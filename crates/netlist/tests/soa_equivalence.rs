//! Property test: the struct-of-arrays flat netlist is observationally
//! identical to the array-of-structs layout it replaced.
//!
//! A reference elaborator below reproduces the pre-refactor algorithm
//! verbatim — per-cell/per-net heap records, joined hierarchical name
//! strings, loads pushed at cell-creation time, Kahn levelization with a
//! ready *stack* — and every generated circuit is checked field by field:
//! accessors, name lookups, connectivity, levelization order and depths,
//! path-interning order (hence `layer_signatures`), and extracted features.

use ssresf_netlist::cell::CellKind;
use ssresf_netlist::design::{Design, PortDir};
use ssresf_netlist::features::{CONE_CAP, DEPTH_OBS_SATURATED};
use ssresf_netlist::{
    CircuitSpec, Driver, FeatureExtractor, GateSpec, ModuleBuilder, ModuleClass, ModuleId, NetId,
    GENERATOR_KINDS,
};

// ---------------------------------------------------------------------------
// Reference (pre-refactor) elaboration
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RefDriver {
    Cell(usize),
    PrimaryInput,
}

struct RefCell {
    name: String,
    path: Vec<String>,
    kind: CellKind,
    inputs: Vec<usize>,
    output: usize,
}

struct RefNet {
    name: String,
    driver: Option<RefDriver>,
    loads: Vec<(usize, u8)>,
}

struct RefFlat {
    cells: Vec<RefCell>,
    nets: Vec<RefNet>,
    primary_inputs: Vec<usize>,
    primary_outputs: Vec<usize>,
    /// Paths in interning order (root first).
    paths: Vec<Vec<String>>,
}

fn join(path: &[String], leaf: &str) -> String {
    if path.is_empty() {
        leaf.to_owned()
    } else {
        format!("{}.{leaf}", path.join("."))
    }
}

fn reference_flatten(design: &Design) -> RefFlat {
    let top = design.top().expect("test designs set a top");
    let top_module = design.module(top);
    let mut flat = RefFlat {
        cells: Vec::new(),
        nets: Vec::new(),
        primary_inputs: Vec::new(),
        primary_outputs: Vec::new(),
        paths: vec![Vec::new()],
    };

    let mut net_map = Vec::with_capacity(top_module.nets.len());
    for name in &top_module.nets {
        net_map.push(flat.nets.len());
        flat.nets.push(RefNet {
            name: name.clone(),
            driver: None,
            loads: Vec::new(),
        });
    }
    for port in &top_module.ports {
        let net = net_map[port.net.index()];
        match port.dir {
            PortDir::Input => {
                flat.primary_inputs.push(net);
                flat.nets[net].driver = Some(RefDriver::PrimaryInput);
            }
            PortDir::Output => flat.primary_outputs.push(net),
        }
    }
    reference_expand(design, top, &[], &net_map, &mut flat);
    flat
}

fn reference_expand(
    design: &Design,
    module_id: ModuleId,
    path: &[String],
    net_map: &[usize],
    flat: &mut RefFlat,
) {
    let module = design.module(module_id);
    for cell in &module.cells {
        let id = flat.cells.len();
        let inputs: Vec<usize> = cell.inputs.iter().map(|n| net_map[n.index()]).collect();
        let output = net_map[cell.output.index()];
        // The AoS layout pushed loads at cell-creation time: global cell
        // order ascending, pin order ascending within a cell.
        for (pin, &net) in inputs.iter().enumerate() {
            flat.nets[net].loads.push((id, pin as u8));
        }
        assert!(flat.nets[output].driver.is_none(), "multiple drivers");
        flat.nets[output].driver = Some(RefDriver::Cell(id));
        flat.cells.push(RefCell {
            name: join(path, &cell.name),
            path: path.to_vec(),
            kind: cell.kind,
            inputs,
            output,
        });
    }
    for inst in &module.instances {
        let child = design.module(inst.module);
        let mut child_path = path.to_vec();
        child_path.push(inst.name.clone());
        if !flat.paths.contains(&child_path) {
            flat.paths.push(child_path.clone());
        }
        let mut child_map: Vec<Option<usize>> = vec![None; child.nets.len()];
        for (port, &conn) in child.ports.iter().zip(&inst.connections) {
            child_map[port.net.index()] = Some(net_map[conn.index()]);
        }
        let mut resolved = Vec::with_capacity(child.nets.len());
        for (i, bound) in child_map.iter().enumerate() {
            resolved.push(match bound {
                Some(id) => *id,
                None => {
                    let id = flat.nets.len();
                    flat.nets.push(RefNet {
                        name: join(&child_path, &child.nets[i]),
                        driver: None,
                        loads: Vec::new(),
                    });
                    id
                }
            });
        }
        reference_expand(design, inst.module, &child_path, &resolved, flat);
    }
}

/// The pre-refactor Kahn levelization: ready stack seeded in cell order,
/// LIFO pop, depth computed at pop time.
fn reference_levelize(flat: &RefFlat) -> (Vec<usize>, Vec<u32>, u32) {
    let n = flat.cells.len();
    let mut pending = vec![0u32; n];
    let mut ready = Vec::new();
    let mut order = Vec::new();
    let mut depth = vec![0u32; n];
    let comb_driver = |net: usize| -> Option<usize> {
        match flat.nets[net].driver {
            Some(RefDriver::Cell(c)) if flat.cells[c].kind.is_combinational() => Some(c),
            _ => None,
        }
    };
    for (i, cell) in flat.cells.iter().enumerate() {
        if cell.kind.is_sequential() {
            continue;
        }
        let count = cell
            .inputs
            .iter()
            .filter(|&&net| comb_driver(net).is_some())
            .count() as u32;
        pending[i] = count;
        if count == 0 {
            ready.push(i);
        }
    }
    let mut max_depth = 0;
    while let Some(id) = ready.pop() {
        order.push(id);
        let mut d = 0;
        for &input in &flat.cells[id].inputs {
            if let Some(driver) = comb_driver(input) {
                d = d.max(depth[driver] + 1);
            }
        }
        depth[id] = d;
        max_depth = max_depth.max(d);
        for &(load, _) in &flat.nets[flat.cells[id].output].loads {
            if flat.cells[load].kind.is_combinational() {
                pending[load] -= 1;
                if pending[load] == 0 {
                    ready.push(load);
                }
            }
        }
    }
    assert_eq!(
        order.len(),
        flat.cells
            .iter()
            .filter(|c| c.kind.is_combinational())
            .count(),
        "reference levelization stuck"
    );
    (order, depth, max_depth)
}

/// Backward BFS over the reference arrays from a seed cell set.
fn reference_backward_bfs(flat: &RefFlat, seeds: &[usize]) -> Vec<u32> {
    const UNOBSERVABLE: u32 = u32::MAX;
    let mut dist = vec![UNOBSERVABLE; flat.cells.len()];
    let mut queue = std::collections::VecDeque::new();
    for &cell in seeds {
        if dist[cell] != 0 {
            dist[cell] = 0;
            queue.push_back(cell);
        }
    }
    while let Some(cell) = queue.pop_front() {
        let d = dist[cell];
        for &input in &flat.cells[cell].inputs {
            if let Some(RefDriver::Cell(driver)) = flat.nets[input].driver {
                if dist[driver] > d + 1 {
                    dist[driver] = d + 1;
                    queue.push_back(driver);
                }
            }
        }
    }
    dist
}

/// Uncapped transitive cone size over the reference arrays. The SoA
/// extractor stops expanding at `CONE_CAP`, which yields the same value as
/// clamping the full cone size (either the whole cone was counted, or the
/// count saturated at exactly the cap).
fn reference_cone(flat: &RefFlat, root: usize, fanin: bool) -> usize {
    let mut seen = vec![root];
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(cell) = queue.pop_front() {
        let push =
            |next: usize, seen: &mut Vec<usize>, queue: &mut std::collections::VecDeque<usize>| {
                if !seen.contains(&next) {
                    seen.push(next);
                    queue.push_back(next);
                }
            };
        if fanin {
            for &input in &flat.cells[cell].inputs {
                if let Some(RefDriver::Cell(driver)) = flat.nets[input].driver {
                    push(driver, &mut seen, &mut queue);
                }
            }
        } else {
            for &(load, _) in &flat.nets[flat.cells[cell].output].loads {
                push(load, &mut seen, &mut queue);
            }
        }
    }
    (seen.len() - 1).min(CONE_CAP)
}

/// COP forward/backward passes over the reference arrays, visiting cells in
/// the reference levelized order (asserted identical to the SoA order, so
/// float accumulation order matches bit for bit).
fn reference_cop(flat: &RefFlat, order: &[usize]) -> (Vec<f64>, Vec<f64>) {
    let mut p = vec![0.5; flat.nets.len()];
    for &id in order {
        let cell = &flat.cells[id];
        let input = |pin: usize| p[cell.inputs[pin]];
        let out = match cell.kind {
            CellKind::Tie0 => 0.0,
            CellKind::Tie1 => 1.0,
            CellKind::Buf => input(0),
            CellKind::Inv => 1.0 - input(0),
            CellKind::And2 => input(0) * input(1),
            CellKind::And3 => input(0) * input(1) * input(2),
            CellKind::Nand2 => 1.0 - input(0) * input(1),
            CellKind::Nand3 => 1.0 - input(0) * input(1) * input(2),
            CellKind::Or2 => 1.0 - (1.0 - input(0)) * (1.0 - input(1)),
            CellKind::Or3 => 1.0 - (1.0 - input(0)) * (1.0 - input(1)) * (1.0 - input(2)),
            CellKind::Nor2 => (1.0 - input(0)) * (1.0 - input(1)),
            CellKind::Nor3 => (1.0 - input(0)) * (1.0 - input(1)) * (1.0 - input(2)),
            CellKind::Xor2 => {
                let (a, b) = (input(0), input(1));
                a * (1.0 - b) + b * (1.0 - a)
            }
            CellKind::Xnor2 => {
                let (a, b) = (input(0), input(1));
                1.0 - (a * (1.0 - b) + b * (1.0 - a))
            }
            CellKind::Mux2 => {
                let (d0, d1, s) = (input(0), input(1), input(2));
                (1.0 - s) * d0 + s * d1
            }
            CellKind::Aoi21 => (1.0 - input(0) * input(1)) * (1.0 - input(2)),
            CellKind::Oai21 => 1.0 - (1.0 - (1.0 - input(0)) * (1.0 - input(1))) * input(2),
            _ => 0.5,
        };
        p[cell.output] = out;
    }

    let mut obs = vec![0.0f64; flat.nets.len()];
    for &out in &flat.primary_outputs {
        obs[out] = 1.0;
    }
    for cell in flat.cells.iter().filter(|c| c.kind.is_sequential()) {
        for &input in &cell.inputs {
            obs[input] = 1.0;
        }
    }
    for &id in order.iter().rev() {
        let cell = &flat.cells[id];
        let out_obs = obs[cell.output];
        if out_obs == 0.0 {
            continue;
        }
        let ip = |pin: usize| p[cell.inputs[pin]];
        for (pin, &input) in cell.inputs.iter().enumerate() {
            let sens = match cell.kind {
                CellKind::Buf | CellKind::Inv | CellKind::Xor2 | CellKind::Xnor2 => 1.0,
                CellKind::And2 | CellKind::Nand2 => ip(1 - pin),
                CellKind::Or2 | CellKind::Nor2 => 1.0 - ip(1 - pin),
                CellKind::And3 | CellKind::Nand3 => (0..3).filter(|&j| j != pin).map(ip).product(),
                CellKind::Or3 | CellKind::Nor3 => {
                    (0..3).filter(|&j| j != pin).map(|j| 1.0 - ip(j)).product()
                }
                CellKind::Mux2 => match pin {
                    0 => 1.0 - ip(2),
                    1 => ip(2),
                    _ => ip(0) * (1.0 - ip(1)) + ip(1) * (1.0 - ip(0)),
                },
                CellKind::Aoi21 => match pin {
                    0 => ip(1) * (1.0 - ip(2)),
                    1 => ip(0) * (1.0 - ip(2)),
                    _ => 1.0 - ip(0) * ip(1),
                },
                CellKind::Oai21 => match pin {
                    0 => (1.0 - ip(1)) * ip(2),
                    1 => (1.0 - ip(0)) * ip(2),
                    _ => 1.0 - (1.0 - ip(0)) * (1.0 - ip(1)),
                },
                _ => 0.0,
            };
            let through = out_obs * sens;
            if through > obs[input] {
                obs[input] = through;
            }
        }
    }
    (p, obs)
}

/// The pre-refactor feature pipeline on the reference arrays, extended with
/// independent implementations of the graph-feature columns.
fn reference_features(flat: &RefFlat, depth_fwd: &[u32], order: &[usize]) -> Vec<Vec<f64>> {
    const UNOBSERVABLE: u32 = u32::MAX;
    let n = flat.cells.len();
    let mut obs = vec![UNOBSERVABLE; n];
    let mut queue = std::collections::VecDeque::new();
    for &out in &flat.primary_outputs {
        if let Some(RefDriver::Cell(cell)) = flat.nets[out].driver {
            if obs[cell] > 0 {
                obs[cell] = 0;
                queue.push_back(cell);
            }
        }
    }
    for cell in flat.cells.iter().filter(|c| c.kind.is_sequential()) {
        for &input in &cell.inputs {
            if let Some(RefDriver::Cell(driver)) = flat.nets[input].driver {
                if obs[driver] > 1 {
                    obs[driver] = 1;
                    queue.push_back(driver);
                }
            }
        }
    }
    while let Some(cell) = queue.pop_front() {
        let d = obs[cell];
        for &input in &flat.cells[cell].inputs {
            if let Some(RefDriver::Cell(driver)) = flat.nets[input].driver {
                if obs[driver] > d + 1 {
                    obs[driver] = d + 1;
                    queue.push_back(driver);
                }
            }
        }
    }

    let po_seeds: Vec<usize> = flat
        .primary_outputs
        .iter()
        .filter_map(|&out| match flat.nets[out].driver {
            Some(RefDriver::Cell(cell)) => Some(cell),
            _ => None,
        })
        .collect();
    let mut ff_seeds = Vec::new();
    for cell in flat.cells.iter().filter(|c| c.kind.is_sequential()) {
        for &input in &cell.inputs {
            if let Some(RefDriver::Cell(driver)) = flat.nets[input].driver {
                ff_seeds.push(driver);
            }
        }
    }
    let depth_po = reference_backward_bfs(flat, &po_seeds);
    let depth_ff = reference_backward_bfs(flat, &ff_seeds);
    let saturate = |d: u32| match d {
        UNOBSERVABLE => DEPTH_OBS_SATURATED,
        d => f64::from(d).min(DEPTH_OBS_SATURATED),
    };
    let (cop_p, cop_obs) = reference_cop(flat, order);

    flat.cells
        .iter()
        .enumerate()
        .map(|(i, cell)| {
            let class = ModuleClass::infer(&cell.path);
            let (is_cpu, is_bus, is_memory) = match class {
                ModuleClass::Cpu => (1.0, 0.0, 0.0),
                ModuleClass::Bus => (0.0, 1.0, 0.0),
                ModuleClass::Memory => (0.0, 0.0, 1.0),
                ModuleClass::Other => (0.0, 0.0, 0.0),
            };
            let mut neighbors: Vec<usize> = Vec::new();
            for &input in &cell.inputs {
                if let Some(RefDriver::Cell(driver)) = flat.nets[input].driver {
                    if driver != i && !neighbors.contains(&driver) {
                        neighbors.push(driver);
                    }
                }
            }
            for &(load, _) in &flat.nets[cell.output].loads {
                if load != i && !neighbors.contains(&load) {
                    neighbors.push(load);
                }
            }
            let p = cop_p[cell.output];
            let o = cop_obs[cell.output];
            vec![
                flat.nets[cell.output].loads.len() as f64,
                cell.inputs.len() as f64,
                f64::from(depth_fwd[i]),
                match obs[i] {
                    UNOBSERVABLE => DEPTH_OBS_SATURATED,
                    d => f64::from(d),
                },
                f64::from(cell.kind.transistor_count()),
                if cell.kind.is_sequential() { 1.0 } else { 0.0 },
                cell.path.len() as f64,
                is_cpu,
                is_bus,
                is_memory,
                neighbors.len() as f64,
                0.0,
                reference_cone(flat, i, true) as f64,
                reference_cone(flat, i, false) as f64,
                saturate(depth_po[i]),
                saturate(depth_ff[i]),
                p,
                o,
                o * 2.0 * p * (1.0 - p),
            ]
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The equivalence check
// ---------------------------------------------------------------------------

fn assert_equivalent(design: &Design) {
    let flat = design.flatten().expect("test circuits flatten");
    let reference = reference_flatten(design);

    assert_eq!(flat.cells().len(), reference.cells.len());
    assert_eq!(flat.nets().len(), reference.nets.len());
    assert_eq!(
        flat.primary_inputs()
            .iter()
            .map(|n| n.index())
            .collect::<Vec<_>>(),
        reference.primary_inputs
    );
    assert_eq!(
        flat.primary_outputs()
            .iter()
            .map(|n| n.index())
            .collect::<Vec<_>>(),
        reference.primary_outputs
    );

    for (id, cell) in flat.iter_cells() {
        let expected = &reference.cells[id.index()];
        assert_eq!(flat.cell_full_name(id), expected.name);
        assert_eq!(cell.kind, expected.kind);
        assert_eq!(
            cell.inputs.iter().map(|n| n.index()).collect::<Vec<_>>(),
            expected.inputs
        );
        assert_eq!(cell.output.index(), expected.output);
        assert_eq!(
            flat.paths().resolve(cell.path).segments(),
            expected.path.as_slice()
        );
        assert_eq!(
            flat.cell_by_name(&expected.name),
            Some(id),
            "{}",
            expected.name
        );
    }

    for (i, expected) in reference.nets.iter().enumerate() {
        let id = NetId(i as u32);
        let net = flat.net(id);
        assert_eq!(flat.net_full_name(id), expected.name);
        assert_eq!(
            flat.net_by_name(&expected.name),
            Some(id),
            "{}",
            expected.name
        );
        let driver = net.driver.map(|d| match d {
            Driver::Cell(c) => RefDriver::Cell(c.index()),
            Driver::PrimaryInput => RefDriver::PrimaryInput,
        });
        assert_eq!(driver, expected.driver, "{}", expected.name);
        assert_eq!(
            net.loads
                .iter()
                .map(|&(c, p)| (c.index(), p))
                .collect::<Vec<_>>(),
            expected.loads,
            "{}",
            expected.name
        );
        assert_eq!(flat.fanout(id), expected.loads.len());
    }

    // Path interning order drives layer_signatures: same paths, same order,
    // and the signature invariant holds against the reference paths.
    let interned: Vec<Vec<String>> = flat
        .paths()
        .iter()
        .map(|(_, p)| p.segments().to_vec())
        .collect();
    assert_eq!(interned, reference.paths);
    let max_depth_paths = reference.paths.iter().map(Vec::len).max().unwrap_or(0);
    for depth in 1..=max_depth_paths.max(1) {
        let sigs = flat.paths().layer_signatures(depth);
        for (ia, a) in flat.paths().iter() {
            for (ib, b) in flat.paths().iter() {
                for slot in 0..depth {
                    assert_eq!(
                        sigs.of(ia)[slot] == sigs.of(ib)[slot],
                        a.layer(slot + 1) == b.layer(slot + 1)
                    );
                }
            }
        }
    }

    // Levelization: identical visit order and depths.
    let lv = flat.levelize().expect("test circuits are loop-free");
    let (ref_order, ref_depth, ref_max) = reference_levelize(&reference);
    assert_eq!(
        lv.order.iter().map(|c| c.index()).collect::<Vec<_>>(),
        ref_order
    );
    assert_eq!(lv.cell_depth, ref_depth);
    assert_eq!(lv.max_depth, ref_max);

    // Feature extraction: bit-identical vectors.
    let fx = FeatureExtractor::new(&flat).unwrap();
    let features = fx.extract(None);
    let expected = reference_features(&reference, &ref_depth, &ref_order);
    assert_eq!(features.len(), expected.len());
    for (got, want) in features.iter().zip(&expected) {
        assert_eq!(got.values, *want, "cell {}", flat.cell_full_name(got.cell));
    }
}

// ---------------------------------------------------------------------------
// Circuit generation
// ---------------------------------------------------------------------------

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn random_spec(seed: u64) -> CircuitSpec {
    let mut s = seed;
    let gates = (splitmix(&mut s) % 24 + 4) as usize;
    CircuitSpec {
        name: format!("soa_eq_{seed}"),
        inputs: (splitmix(&mut s) % 5 + 1) as usize,
        gates: (0..gates)
            .map(|_| GateSpec {
                kind: GENERATOR_KINDS[(splitmix(&mut s) as usize) % GENERATOR_KINDS.len()],
                operands: vec![
                    splitmix(&mut s) as u16,
                    splitmix(&mut s) as u16,
                    splitmix(&mut s) as u16,
                ],
            })
            .collect(),
        ff_d: (0..(splitmix(&mut s) % 4 + 1))
            .map(|_| splitmix(&mut s) as u16)
            .collect(),
        outputs: (splitmix(&mut s) % 3 + 1) as usize,
    }
}

/// A three-level hierarchy with repeated instances, exercising shared
/// module name caches and non-root path interning.
fn nested_design() -> Design {
    let mut design = Design::new();

    let mut leaf = ModuleBuilder::new("leaf");
    let a = leaf.port("a", PortDir::Input);
    let b = leaf.port("b", PortDir::Input);
    let y = leaf.port("y", PortDir::Output);
    let w = leaf.net("w");
    leaf.cell("u_x", CellKind::Xor2, &[a, b], &[w]).unwrap();
    leaf.cell("u_n", CellKind::Inv, &[w], &[y]).unwrap();
    let leaf_id = design.add_module(leaf.finish()).unwrap();

    let mut mid = ModuleBuilder::new("mem_bank");
    let a = mid.port("a", PortDir::Input);
    let b = mid.port("b", PortDir::Input);
    let y = mid.port("y", PortDir::Output);
    let t0 = mid.net("t0");
    let t1 = mid.net("t1");
    mid.instance("u_l0", leaf_id, &[a, b, t0]).unwrap();
    mid.instance("u_l1", leaf_id, &[t0, b, t1]).unwrap();
    mid.cell("u_o", CellKind::Or2, &[t0, t1], &[y]).unwrap();
    let mid_id = design.add_module(mid.finish()).unwrap();

    let mut top = ModuleBuilder::new("top");
    let clk = top.port("clk", PortDir::Input);
    let x = top.port("x", PortDir::Input);
    let z = top.port("z", PortDir::Input);
    let out = top.port("out", PortDir::Output);
    let m0 = top.net("m0");
    let m1 = top.net("m1");
    let q = top.net("q");
    top.instance("u_cpu_bank", mid_id, &[x, z, m0]).unwrap();
    top.instance("u_bus_bank", mid_id, &[m0, z, m1]).unwrap();
    top.instance("u_solo", leaf_id, &[x, m1, q]).unwrap();
    top.cell("u_ff", CellKind::Dff, &[clk, q], &[out]).unwrap();
    let top_id = design.add_module(top.finish()).unwrap();
    design.set_top(top_id).unwrap();
    design
}

#[test]
fn generated_circuits_match_reference_layout() {
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    for seed in 0..cases {
        let spec = random_spec(0xC0FF_EE00 ^ (seed.wrapping_mul(0x9E37_79B9)));
        assert_equivalent(&spec.build_design());
    }
}

#[test]
fn nested_hierarchy_matches_reference_layout() {
    assert_equivalent(&nested_design());
}
