//! Property test: the struct-of-arrays flat netlist is observationally
//! identical to the array-of-structs layout it replaced.
//!
//! A reference elaborator below reproduces the pre-refactor algorithm
//! verbatim — per-cell/per-net heap records, joined hierarchical name
//! strings, loads pushed at cell-creation time, Kahn levelization with a
//! ready *stack* — and every generated circuit is checked field by field:
//! accessors, name lookups, connectivity, levelization order and depths,
//! path-interning order (hence `layer_signatures`), and extracted features.

use ssresf_netlist::cell::CellKind;
use ssresf_netlist::design::{Design, PortDir};
use ssresf_netlist::features::DEPTH_OBS_SATURATED;
use ssresf_netlist::{
    CircuitSpec, Driver, FeatureExtractor, GateSpec, ModuleBuilder, ModuleClass, ModuleId, NetId,
    GENERATOR_KINDS,
};

// ---------------------------------------------------------------------------
// Reference (pre-refactor) elaboration
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RefDriver {
    Cell(usize),
    PrimaryInput,
}

struct RefCell {
    name: String,
    path: Vec<String>,
    kind: CellKind,
    inputs: Vec<usize>,
    output: usize,
}

struct RefNet {
    name: String,
    driver: Option<RefDriver>,
    loads: Vec<(usize, u8)>,
}

struct RefFlat {
    cells: Vec<RefCell>,
    nets: Vec<RefNet>,
    primary_inputs: Vec<usize>,
    primary_outputs: Vec<usize>,
    /// Paths in interning order (root first).
    paths: Vec<Vec<String>>,
}

fn join(path: &[String], leaf: &str) -> String {
    if path.is_empty() {
        leaf.to_owned()
    } else {
        format!("{}.{leaf}", path.join("."))
    }
}

fn reference_flatten(design: &Design) -> RefFlat {
    let top = design.top().expect("test designs set a top");
    let top_module = design.module(top);
    let mut flat = RefFlat {
        cells: Vec::new(),
        nets: Vec::new(),
        primary_inputs: Vec::new(),
        primary_outputs: Vec::new(),
        paths: vec![Vec::new()],
    };

    let mut net_map = Vec::with_capacity(top_module.nets.len());
    for name in &top_module.nets {
        net_map.push(flat.nets.len());
        flat.nets.push(RefNet {
            name: name.clone(),
            driver: None,
            loads: Vec::new(),
        });
    }
    for port in &top_module.ports {
        let net = net_map[port.net.index()];
        match port.dir {
            PortDir::Input => {
                flat.primary_inputs.push(net);
                flat.nets[net].driver = Some(RefDriver::PrimaryInput);
            }
            PortDir::Output => flat.primary_outputs.push(net),
        }
    }
    reference_expand(design, top, &[], &net_map, &mut flat);
    flat
}

fn reference_expand(
    design: &Design,
    module_id: ModuleId,
    path: &[String],
    net_map: &[usize],
    flat: &mut RefFlat,
) {
    let module = design.module(module_id);
    for cell in &module.cells {
        let id = flat.cells.len();
        let inputs: Vec<usize> = cell.inputs.iter().map(|n| net_map[n.index()]).collect();
        let output = net_map[cell.output.index()];
        // The AoS layout pushed loads at cell-creation time: global cell
        // order ascending, pin order ascending within a cell.
        for (pin, &net) in inputs.iter().enumerate() {
            flat.nets[net].loads.push((id, pin as u8));
        }
        assert!(flat.nets[output].driver.is_none(), "multiple drivers");
        flat.nets[output].driver = Some(RefDriver::Cell(id));
        flat.cells.push(RefCell {
            name: join(path, &cell.name),
            path: path.to_vec(),
            kind: cell.kind,
            inputs,
            output,
        });
    }
    for inst in &module.instances {
        let child = design.module(inst.module);
        let mut child_path = path.to_vec();
        child_path.push(inst.name.clone());
        if !flat.paths.contains(&child_path) {
            flat.paths.push(child_path.clone());
        }
        let mut child_map: Vec<Option<usize>> = vec![None; child.nets.len()];
        for (port, &conn) in child.ports.iter().zip(&inst.connections) {
            child_map[port.net.index()] = Some(net_map[conn.index()]);
        }
        let mut resolved = Vec::with_capacity(child.nets.len());
        for (i, bound) in child_map.iter().enumerate() {
            resolved.push(match bound {
                Some(id) => *id,
                None => {
                    let id = flat.nets.len();
                    flat.nets.push(RefNet {
                        name: join(&child_path, &child.nets[i]),
                        driver: None,
                        loads: Vec::new(),
                    });
                    id
                }
            });
        }
        reference_expand(design, inst.module, &child_path, &resolved, flat);
    }
}

/// The pre-refactor Kahn levelization: ready stack seeded in cell order,
/// LIFO pop, depth computed at pop time.
fn reference_levelize(flat: &RefFlat) -> (Vec<usize>, Vec<u32>, u32) {
    let n = flat.cells.len();
    let mut pending = vec![0u32; n];
    let mut ready = Vec::new();
    let mut order = Vec::new();
    let mut depth = vec![0u32; n];
    let comb_driver = |net: usize| -> Option<usize> {
        match flat.nets[net].driver {
            Some(RefDriver::Cell(c)) if flat.cells[c].kind.is_combinational() => Some(c),
            _ => None,
        }
    };
    for (i, cell) in flat.cells.iter().enumerate() {
        if cell.kind.is_sequential() {
            continue;
        }
        let count = cell
            .inputs
            .iter()
            .filter(|&&net| comb_driver(net).is_some())
            .count() as u32;
        pending[i] = count;
        if count == 0 {
            ready.push(i);
        }
    }
    let mut max_depth = 0;
    while let Some(id) = ready.pop() {
        order.push(id);
        let mut d = 0;
        for &input in &flat.cells[id].inputs {
            if let Some(driver) = comb_driver(input) {
                d = d.max(depth[driver] + 1);
            }
        }
        depth[id] = d;
        max_depth = max_depth.max(d);
        for &(load, _) in &flat.nets[flat.cells[id].output].loads {
            if flat.cells[load].kind.is_combinational() {
                pending[load] -= 1;
                if pending[load] == 0 {
                    ready.push(load);
                }
            }
        }
    }
    assert_eq!(
        order.len(),
        flat.cells
            .iter()
            .filter(|c| c.kind.is_combinational())
            .count(),
        "reference levelization stuck"
    );
    (order, depth, max_depth)
}

/// The pre-refactor feature pipeline on the reference arrays.
fn reference_features(flat: &RefFlat, depth_fwd: &[u32]) -> Vec<Vec<f64>> {
    const UNOBSERVABLE: u32 = u32::MAX;
    let n = flat.cells.len();
    let mut obs = vec![UNOBSERVABLE; n];
    let mut queue = std::collections::VecDeque::new();
    for &out in &flat.primary_outputs {
        if let Some(RefDriver::Cell(cell)) = flat.nets[out].driver {
            if obs[cell] > 0 {
                obs[cell] = 0;
                queue.push_back(cell);
            }
        }
    }
    for cell in flat.cells.iter().filter(|c| c.kind.is_sequential()) {
        for &input in &cell.inputs {
            if let Some(RefDriver::Cell(driver)) = flat.nets[input].driver {
                if obs[driver] > 1 {
                    obs[driver] = 1;
                    queue.push_back(driver);
                }
            }
        }
    }
    while let Some(cell) = queue.pop_front() {
        let d = obs[cell];
        for &input in &flat.cells[cell].inputs {
            if let Some(RefDriver::Cell(driver)) = flat.nets[input].driver {
                if obs[driver] > d + 1 {
                    obs[driver] = d + 1;
                    queue.push_back(driver);
                }
            }
        }
    }

    flat.cells
        .iter()
        .enumerate()
        .map(|(i, cell)| {
            let class = ModuleClass::infer(&cell.path);
            let (is_cpu, is_bus, is_memory) = match class {
                ModuleClass::Cpu => (1.0, 0.0, 0.0),
                ModuleClass::Bus => (0.0, 1.0, 0.0),
                ModuleClass::Memory => (0.0, 0.0, 1.0),
                ModuleClass::Other => (0.0, 0.0, 0.0),
            };
            let mut neighbors: Vec<usize> = Vec::new();
            for &input in &cell.inputs {
                if let Some(RefDriver::Cell(driver)) = flat.nets[input].driver {
                    if driver != i && !neighbors.contains(&driver) {
                        neighbors.push(driver);
                    }
                }
            }
            for &(load, _) in &flat.nets[cell.output].loads {
                if load != i && !neighbors.contains(&load) {
                    neighbors.push(load);
                }
            }
            vec![
                flat.nets[cell.output].loads.len() as f64,
                cell.inputs.len() as f64,
                f64::from(depth_fwd[i]),
                match obs[i] {
                    UNOBSERVABLE => DEPTH_OBS_SATURATED,
                    d => f64::from(d),
                },
                f64::from(cell.kind.transistor_count()),
                if cell.kind.is_sequential() { 1.0 } else { 0.0 },
                cell.path.len() as f64,
                is_cpu,
                is_bus,
                is_memory,
                neighbors.len() as f64,
                0.0,
            ]
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The equivalence check
// ---------------------------------------------------------------------------

fn assert_equivalent(design: &Design) {
    let flat = design.flatten().expect("test circuits flatten");
    let reference = reference_flatten(design);

    assert_eq!(flat.cells().len(), reference.cells.len());
    assert_eq!(flat.nets().len(), reference.nets.len());
    assert_eq!(
        flat.primary_inputs()
            .iter()
            .map(|n| n.index())
            .collect::<Vec<_>>(),
        reference.primary_inputs
    );
    assert_eq!(
        flat.primary_outputs()
            .iter()
            .map(|n| n.index())
            .collect::<Vec<_>>(),
        reference.primary_outputs
    );

    for (id, cell) in flat.iter_cells() {
        let expected = &reference.cells[id.index()];
        assert_eq!(flat.cell_full_name(id), expected.name);
        assert_eq!(cell.kind, expected.kind);
        assert_eq!(
            cell.inputs.iter().map(|n| n.index()).collect::<Vec<_>>(),
            expected.inputs
        );
        assert_eq!(cell.output.index(), expected.output);
        assert_eq!(
            flat.paths().resolve(cell.path).segments(),
            expected.path.as_slice()
        );
        assert_eq!(
            flat.cell_by_name(&expected.name),
            Some(id),
            "{}",
            expected.name
        );
    }

    for (i, expected) in reference.nets.iter().enumerate() {
        let id = NetId(i as u32);
        let net = flat.net(id);
        assert_eq!(flat.net_full_name(id), expected.name);
        assert_eq!(
            flat.net_by_name(&expected.name),
            Some(id),
            "{}",
            expected.name
        );
        let driver = net.driver.map(|d| match d {
            Driver::Cell(c) => RefDriver::Cell(c.index()),
            Driver::PrimaryInput => RefDriver::PrimaryInput,
        });
        assert_eq!(driver, expected.driver, "{}", expected.name);
        assert_eq!(
            net.loads
                .iter()
                .map(|&(c, p)| (c.index(), p))
                .collect::<Vec<_>>(),
            expected.loads,
            "{}",
            expected.name
        );
        assert_eq!(flat.fanout(id), expected.loads.len());
    }

    // Path interning order drives layer_signatures: same paths, same order,
    // and the signature invariant holds against the reference paths.
    let interned: Vec<Vec<String>> = flat
        .paths()
        .iter()
        .map(|(_, p)| p.segments().to_vec())
        .collect();
    assert_eq!(interned, reference.paths);
    let max_depth_paths = reference.paths.iter().map(Vec::len).max().unwrap_or(0);
    for depth in 1..=max_depth_paths.max(1) {
        let sigs = flat.paths().layer_signatures(depth);
        for (ia, a) in flat.paths().iter() {
            for (ib, b) in flat.paths().iter() {
                for slot in 0..depth {
                    assert_eq!(
                        sigs.of(ia)[slot] == sigs.of(ib)[slot],
                        a.layer(slot + 1) == b.layer(slot + 1)
                    );
                }
            }
        }
    }

    // Levelization: identical visit order and depths.
    let lv = flat.levelize().expect("test circuits are loop-free");
    let (ref_order, ref_depth, ref_max) = reference_levelize(&reference);
    assert_eq!(
        lv.order.iter().map(|c| c.index()).collect::<Vec<_>>(),
        ref_order
    );
    assert_eq!(lv.cell_depth, ref_depth);
    assert_eq!(lv.max_depth, ref_max);

    // Feature extraction: bit-identical vectors.
    let fx = FeatureExtractor::new(&flat).unwrap();
    let features = fx.extract(None);
    let expected = reference_features(&reference, &ref_depth);
    assert_eq!(features.len(), expected.len());
    for (got, want) in features.iter().zip(&expected) {
        assert_eq!(got.values, *want, "cell {}", flat.cell_full_name(got.cell));
    }
}

// ---------------------------------------------------------------------------
// Circuit generation
// ---------------------------------------------------------------------------

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn random_spec(seed: u64) -> CircuitSpec {
    let mut s = seed;
    let gates = (splitmix(&mut s) % 24 + 4) as usize;
    CircuitSpec {
        name: format!("soa_eq_{seed}"),
        inputs: (splitmix(&mut s) % 5 + 1) as usize,
        gates: (0..gates)
            .map(|_| GateSpec {
                kind: GENERATOR_KINDS[(splitmix(&mut s) as usize) % GENERATOR_KINDS.len()],
                operands: vec![
                    splitmix(&mut s) as u16,
                    splitmix(&mut s) as u16,
                    splitmix(&mut s) as u16,
                ],
            })
            .collect(),
        ff_d: (0..(splitmix(&mut s) % 4 + 1))
            .map(|_| splitmix(&mut s) as u16)
            .collect(),
        outputs: (splitmix(&mut s) % 3 + 1) as usize,
    }
}

/// A three-level hierarchy with repeated instances, exercising shared
/// module name caches and non-root path interning.
fn nested_design() -> Design {
    let mut design = Design::new();

    let mut leaf = ModuleBuilder::new("leaf");
    let a = leaf.port("a", PortDir::Input);
    let b = leaf.port("b", PortDir::Input);
    let y = leaf.port("y", PortDir::Output);
    let w = leaf.net("w");
    leaf.cell("u_x", CellKind::Xor2, &[a, b], &[w]).unwrap();
    leaf.cell("u_n", CellKind::Inv, &[w], &[y]).unwrap();
    let leaf_id = design.add_module(leaf.finish()).unwrap();

    let mut mid = ModuleBuilder::new("mem_bank");
    let a = mid.port("a", PortDir::Input);
    let b = mid.port("b", PortDir::Input);
    let y = mid.port("y", PortDir::Output);
    let t0 = mid.net("t0");
    let t1 = mid.net("t1");
    mid.instance("u_l0", leaf_id, &[a, b, t0]).unwrap();
    mid.instance("u_l1", leaf_id, &[t0, b, t1]).unwrap();
    mid.cell("u_o", CellKind::Or2, &[t0, t1], &[y]).unwrap();
    let mid_id = design.add_module(mid.finish()).unwrap();

    let mut top = ModuleBuilder::new("top");
    let clk = top.port("clk", PortDir::Input);
    let x = top.port("x", PortDir::Input);
    let z = top.port("z", PortDir::Input);
    let out = top.port("out", PortDir::Output);
    let m0 = top.net("m0");
    let m1 = top.net("m1");
    let q = top.net("q");
    top.instance("u_cpu_bank", mid_id, &[x, z, m0]).unwrap();
    top.instance("u_bus_bank", mid_id, &[m0, z, m1]).unwrap();
    top.instance("u_solo", leaf_id, &[x, m1, q]).unwrap();
    top.cell("u_ff", CellKind::Dff, &[clk, q], &[out]).unwrap();
    let top_id = design.add_module(top.finish()).unwrap();
    design.set_top(top_id).unwrap();
    design
}

#[test]
fn generated_circuits_match_reference_layout() {
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    for seed in 0..cases {
        let spec = random_spec(0xC0FF_EE00 ^ (seed.wrapping_mul(0x9E37_79B9)));
        assert_equivalent(&spec.build_design());
    }
}

#[test]
fn nested_hierarchy_matches_reference_layout() {
    assert_equivalent(&nested_design());
}
