//! Structural feature extraction for sensitive-node classification.
//!
//! The SSRESF SVM classifier (paper §III-E) learns from "structural features
//! of the netlist". This module computes, for every cell of a
//! [`FlatNetlist`], the candidate feature set from which the paper's forward
//! feature selection (Fig. 5) picks the best subset:
//!
//! | index | name | description |
//! |---|---|---|
//! | 0 | `fanout` | loads on the cell's output net |
//! | 1 | `fanin` | number of input pins |
//! | 2 | `depth_fwd` | combinational depth from the nearest source |
//! | 3 | `depth_obs` | cell hops to the nearest observation point |
//! | 4 | `transistors` | transistor-count complexity proxy |
//! | 5 | `is_sequential` | 1 for state-holding cells |
//! | 6 | `hier_depth` | hierarchy depth of the instance path |
//! | 7 | `is_cpu` | one-hot module class: CPU logic |
//! | 8 | `is_bus` | one-hot module class: bus fabric |
//! | 9 | `is_memory` | one-hot module class: memory |
//! | 10 | `neighborhood` | distinct cells at distance 1 |
//! | 11 | `activity` | toggle activity of the output net (from simulation) |
//! | 12 | `fanin_cone` | transitive fan-in cells (bounded BFS, saturates) |
//! | 13 | `fanout_cone` | transitive fan-out cells (bounded BFS, saturates) |
//! | 14 | `depth_po` | cell hops to the nearest primary output |
//! | 15 | `depth_ff` | cell hops to the nearest flip-flop data input |
//! | 16 | `cop_ctrl` | COP signal probability of the output net |
//! | 17 | `cop_obs` | COP observability of the output net |
//! | 18 | `cop_product` | COP toggle detectability `obs * 2p(1-p)` |
//!
//! Features 12–18 are the *graph* signals from the FsimNN / graph-theory
//! SEU literature: cone sizes and depths capture how much downstream state
//! a flipped node can corrupt, and the COP (controllability/observability
//! program) products estimate how likely a flip is to propagate to an
//! observation point under random stimulus.

use crate::flat::{CellId, Driver, FlatNetlist};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Names of the candidate features, indexed like the extracted vectors.
pub const STRUCTURAL_FEATURE_NAMES: &[&str] = &[
    "fanout",
    "fanin",
    "depth_fwd",
    "depth_obs",
    "transistors",
    "is_sequential",
    "hier_depth",
    "is_cpu",
    "is_bus",
    "is_memory",
    "neighborhood",
    "activity",
    "fanin_cone",
    "fanout_cone",
    "depth_po",
    "depth_ff",
    "cop_ctrl",
    "cop_obs",
    "cop_product",
];

/// Coarse functional class of the module containing a cell, inferred from
/// its hierarchical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModuleClass {
    /// CPU core logic.
    Cpu,
    /// Bus/interconnect fabric.
    Bus,
    /// Memory arrays and their periphery.
    Memory,
    /// Anything else (pads, clocking, glue).
    Other,
}

impl ModuleClass {
    /// Infers the class from a hierarchical path's segments.
    ///
    /// Matching is case-insensitive on well-known substrings (`cpu`/`core`,
    /// `bus`/`axi`/`ahb`/`apb`/`noc`, `mem`/`ram`/`sram`/`dram`).
    pub fn infer(segments: &[String]) -> ModuleClass {
        for seg in segments {
            let s = seg.to_ascii_lowercase();
            if s.contains("cpu") || s.contains("core") {
                return ModuleClass::Cpu;
            }
            if s.contains("bus")
                || s.contains("axi")
                || s.contains("ahb")
                || s.contains("apb")
                || s.contains("noc")
            {
                return ModuleClass::Bus;
            }
            if s.contains("mem") || s.contains("ram") {
                return ModuleClass::Memory;
            }
        }
        ModuleClass::Other
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            ModuleClass::Cpu => "cpu",
            ModuleClass::Bus => "bus",
            ModuleClass::Memory => "memory",
            ModuleClass::Other => "other",
        }
    }
}

impl std::fmt::Display for ModuleClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The extracted feature record of one cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellFeatures {
    /// The cell this record describes.
    pub cell: CellId,
    /// Inferred module class.
    pub module_class: ModuleClass,
    /// Feature values, indexed like [`STRUCTURAL_FEATURE_NAMES`].
    pub values: Vec<f64>,
}

/// Computes [`CellFeatures`] for every cell of a netlist.
///
/// # Example
///
/// ```
/// use ssresf_netlist::{CellKind, Design, FeatureExtractor, ModuleBuilder, PortDir};
///
/// # fn main() -> Result<(), ssresf_netlist::NetlistError> {
/// let mut design = Design::new();
/// let mut mb = ModuleBuilder::new("top");
/// let a = mb.port("a", PortDir::Input);
/// let y = mb.port("y", PortDir::Output);
/// mb.cell("u0", CellKind::Inv, &[a], &[y])?;
/// let id = design.add_module(mb.finish())?;
/// design.set_top(id)?;
/// let flat = design.flatten()?;
/// let features = FeatureExtractor::new(&flat)?.extract(None);
/// assert_eq!(features.len(), 1);
/// assert_eq!(features[0].values.len(), 19);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FeatureExtractor<'a> {
    netlist: &'a FlatNetlist,
    depth_fwd: Vec<u32>,
    depth_obs: Vec<u32>,
    depth_po: Vec<u32>,
    depth_ff: Vec<u32>,
    /// Per-net COP signal probability (probability the net carries 1).
    cop_ctrl: Vec<f64>,
    /// Per-net COP observability (probability a flip propagates out).
    cop_obs: Vec<f64>,
}

/// Sentinel observation distance for cells from which no observation point
/// is reachable.
///
/// Real BFS distances are bounded by the cell count, which elaboration caps
/// below `u32::MAX - 2` (see [`NetlistError::TooLarge`](crate::NetlistError)),
/// so a finite distance can never collide with the sentinel.
const UNOBSERVABLE: u32 = u32::MAX;

/// Feature-space substitute for [`UNOBSERVABLE`]: dead-end cells enter
/// scaling as this saturated depth, never as the raw `u32` sentinel (which
/// would dwarf every other feature and wreck normalization).
pub const DEPTH_OBS_SATURATED: f64 = 64.0;

/// Visited-cell cap for the transitive fan-in/fan-out cone features.
///
/// The BFS stops expanding once this many cells have been counted, so the
/// feature value saturates at exactly `CONE_CAP` — which makes the value
/// independent of traversal order (either the full cone was enumerated, or
/// the count is the cap) and bounds extraction work per cell on mega-scale
/// netlists whose clock/enable nets fan out to tens of thousands of loads.
pub const CONE_CAP: usize = 64;

impl<'a> FeatureExtractor<'a> {
    /// Prepares depth maps for `netlist`.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::CombinationalLoop`](crate::NetlistError::CombinationalLoop)
    /// from levelization.
    pub fn new(netlist: &'a FlatNetlist) -> Result<Self, crate::NetlistError> {
        let lv = netlist.levelize()?;
        let depth_obs = observation_distances(netlist);
        let depth_po = po_distances(netlist);
        let depth_ff = ff_distances(netlist);
        let cop_ctrl = cop_signal_probability(netlist, &lv.order);
        let cop_obs = cop_observability(netlist, &lv.order, &cop_ctrl);
        Ok(FeatureExtractor {
            netlist,
            depth_fwd: lv.cell_depth,
            depth_obs,
            depth_po,
            depth_ff,
            cop_ctrl,
            cop_obs,
        })
    }

    /// Extracts features for all cells.
    ///
    /// `activity` optionally supplies per-net toggle activity (in toggles per
    /// cycle) measured by a golden simulation; when absent the activity
    /// feature is 0 for every cell.
    pub fn extract(&self, activity: Option<&[f64]>) -> Vec<CellFeatures> {
        self.netlist
            .iter_cells()
            .map(|(id, _)| self.extract_cell(id, activity))
            .collect()
    }

    /// Extracts the feature record of a single cell.
    pub fn extract_cell(&self, id: CellId, activity: Option<&[f64]>) -> CellFeatures {
        let netlist = self.netlist;
        let cell = netlist.cell(id);
        let path = netlist.paths().resolve(cell.path);
        let module_class = ModuleClass::infer(path.segments());

        let fanout = netlist.fanout(cell.output) as f64;
        let fanin = cell.inputs.len() as f64;
        let depth_fwd = f64::from(self.depth_fwd[id.index()]);
        let depth_obs = match self.depth_obs[id.index()] {
            UNOBSERVABLE => DEPTH_OBS_SATURATED,
            d => f64::from(d),
        };
        let transistors = f64::from(cell.kind.transistor_count());
        let is_sequential = if cell.kind.is_sequential() { 1.0 } else { 0.0 };
        let hier_depth = path.depth() as f64;
        let (is_cpu, is_bus, is_memory) = match module_class {
            ModuleClass::Cpu => (1.0, 0.0, 0.0),
            ModuleClass::Bus => (0.0, 1.0, 0.0),
            ModuleClass::Memory => (0.0, 0.0, 1.0),
            ModuleClass::Other => (0.0, 0.0, 0.0),
        };
        let neighborhood = neighborhood_size(netlist, id) as f64;
        let act = activity.map(|a| a[cell.output.index()]).unwrap_or(0.0);
        let fanin_cone = cone_size(netlist, id, ConeDirection::Fanin) as f64;
        let fanout_cone = cone_size(netlist, id, ConeDirection::Fanout) as f64;
        let depth_po = saturate_depth(self.depth_po[id.index()]);
        let depth_ff = saturate_depth(self.depth_ff[id.index()]);
        let p = self.cop_ctrl[cell.output.index()];
        let obs = self.cop_obs[cell.output.index()];
        // Toggle detectability: probability the output flips under random
        // stimulus (2p(1-p)) times the probability the flip is observed.
        let cop_product = obs * 2.0 * p * (1.0 - p);

        CellFeatures {
            cell: id,
            module_class,
            values: vec![
                fanout,
                fanin,
                depth_fwd,
                depth_obs,
                transistors,
                is_sequential,
                hier_depth,
                is_cpu,
                is_bus,
                is_memory,
                neighborhood,
                act,
                fanin_cone,
                fanout_cone,
                depth_po,
                depth_ff,
                p,
                obs,
                cop_product,
            ],
        }
    }
}

/// Maps a BFS distance into feature space, saturating the unreachable
/// sentinel (and any distance beyond it) at [`DEPTH_OBS_SATURATED`].
fn saturate_depth(d: u32) -> f64 {
    match d {
        UNOBSERVABLE => DEPTH_OBS_SATURATED,
        d => f64::from(d).min(DEPTH_OBS_SATURATED),
    }
}

/// Number of distinct cells adjacent to `id` (input drivers plus output loads).
fn neighborhood_size(netlist: &FlatNetlist, id: CellId) -> usize {
    let cell = netlist.cell(id);
    let loads = netlist.net(cell.output).loads;
    // Sort + dedup rather than a `contains` scan per candidate: a memory
    // macro's write-enable or address driver fans out to tens of thousands
    // of loads, and the quadratic scan dominated whole-chip extraction.
    let mut neighbors: Vec<CellId> = Vec::with_capacity(cell.inputs.len() + loads.len());
    for &input in cell.inputs {
        if let Some(Driver::Cell(driver)) = netlist.net(input).driver {
            if driver != id {
                neighbors.push(driver);
            }
        }
    }
    for &(load, _) in loads {
        if load != id {
            neighbors.push(load);
        }
    }
    neighbors.sort_unstable();
    neighbors.dedup();
    neighbors.len()
}

/// Per-cell hop distance to the nearest observation point: a primary output
/// net (distance 0) or a sequential cell's data input (distance 1).
fn observation_distances(netlist: &FlatNetlist) -> Vec<u32> {
    let mut dist = vec![UNOBSERVABLE; netlist.cells().len()];
    let mut queue = VecDeque::new();

    // Seeds at distance 0: cells driving a primary output.
    for &out in netlist.primary_outputs() {
        if let Some(Driver::Cell(cell)) = netlist.net(out).driver {
            if dist[cell.index()] > 0 {
                dist[cell.index()] = 0;
                queue.push_back(cell);
            }
        }
    }
    // Seeds at distance 1: cells feeding any sequential cell.
    for (_, cell) in netlist.iter_cells() {
        if !cell.kind.is_sequential() {
            continue;
        }
        for &input in cell.inputs {
            if let Some(Driver::Cell(driver)) = netlist.net(input).driver {
                if dist[driver.index()] > 1 {
                    dist[driver.index()] = 1;
                    queue.push_back(driver);
                }
            }
        }
    }

    // BFS backward through input drivers. The queue was seeded in
    // nondecreasing distance order (all 0s pushed before any 1s only if we
    // pushed them that way — they were), so plain BFS yields shortest hops.
    while let Some(cell) = queue.pop_front() {
        let d = dist[cell.index()];
        for &input in netlist.cell(cell).inputs {
            if let Some(Driver::Cell(driver)) = netlist.net(input).driver {
                if dist[driver.index()] > d + 1 {
                    dist[driver.index()] = d + 1;
                    queue.push_back(driver);
                }
            }
        }
    }
    dist
}

/// Backward BFS from a seed set toward input drivers, yielding per-cell hop
/// distances ([`UNOBSERVABLE`] where no seed is reachable).
fn backward_distances(netlist: &FlatNetlist, seeds: &[CellId]) -> Vec<u32> {
    let mut dist = vec![UNOBSERVABLE; netlist.cells().len()];
    let mut queue = VecDeque::new();
    for &cell in seeds {
        if dist[cell.index()] != 0 {
            dist[cell.index()] = 0;
            queue.push_back(cell);
        }
    }
    while let Some(cell) = queue.pop_front() {
        let d = dist[cell.index()];
        for &input in netlist.cell(cell).inputs {
            if let Some(Driver::Cell(driver)) = netlist.net(input).driver {
                if dist[driver.index()] > d + 1 {
                    dist[driver.index()] = d + 1;
                    queue.push_back(driver);
                }
            }
        }
    }
    dist
}

/// Per-cell hop distance to the nearest primary output (distance 0 for the
/// cell driving the PO net itself).
fn po_distances(netlist: &FlatNetlist) -> Vec<u32> {
    let mut seeds = Vec::new();
    for &out in netlist.primary_outputs() {
        if let Some(Driver::Cell(cell)) = netlist.net(out).driver {
            seeds.push(cell);
        }
    }
    backward_distances(netlist, &seeds)
}

/// Per-cell hop distance to the nearest state-holding cell's input
/// (distance 0 for a cell feeding a flip-flop or memory bit directly).
fn ff_distances(netlist: &FlatNetlist) -> Vec<u32> {
    let mut seeds = Vec::new();
    for (_, cell) in netlist.iter_cells() {
        if !cell.kind.is_sequential() {
            continue;
        }
        for &input in cell.inputs {
            if let Some(Driver::Cell(driver)) = netlist.net(input).driver {
                seeds.push(driver);
            }
        }
    }
    backward_distances(netlist, &seeds)
}

/// Traversal direction for [`cone_size`].
#[derive(Clone, Copy)]
enum ConeDirection {
    Fanin,
    Fanout,
}

/// Transitive fan-in or fan-out cone size of `root`, capped at
/// [`CONE_CAP`].
///
/// Counts distinct cells reachable from `root` (excluding `root` itself),
/// stopping as soon as the count reaches the cap. The returned value is
/// traversal-order independent: below the cap the whole cone was
/// enumerated; at the cap the value is exactly `CONE_CAP`.
fn cone_size(netlist: &FlatNetlist, root: CellId, dir: ConeDirection) -> usize {
    // A HashSet would allocate buckets per cell and a bitmap over all
    // cells would cost O(n) per cell; a small sorted vec stays
    // O(CONE_CAP log CONE_CAP).
    let mut seen: Vec<CellId> = Vec::with_capacity(CONE_CAP + 1);
    seen.push(root);
    let mut queue: VecDeque<CellId> = VecDeque::with_capacity(CONE_CAP);
    queue.push_back(root);
    let mut count = 0usize;
    'bfs: while let Some(cell) = queue.pop_front() {
        let view = netlist.cell(cell);
        match dir {
            ConeDirection::Fanin => {
                for &input in view.inputs {
                    if let Some(Driver::Cell(driver)) = netlist.net(input).driver {
                        if let Err(pos) = seen.binary_search(&driver) {
                            seen.insert(pos, driver);
                            queue.push_back(driver);
                            count += 1;
                            if count >= CONE_CAP {
                                break 'bfs;
                            }
                        }
                    }
                }
            }
            ConeDirection::Fanout => {
                for &(load, _) in netlist.net(view.output).loads {
                    if let Err(pos) = seen.binary_search(&load) {
                        seen.insert(pos, load);
                        queue.push_back(load);
                        count += 1;
                        if count >= CONE_CAP {
                            break 'bfs;
                        }
                    }
                }
            }
        }
    }
    count
}

/// COP forward pass: per-net probability of carrying logic 1 under random
/// stimulus.
///
/// Primary inputs, undriven nets and state-holding outputs are pseudo-PIs
/// at probability 0.5; tie cells pin their nets to 0/1; combinational
/// cells combine their input probabilities in levelized order with the
/// standard independence assumption.
fn cop_signal_probability(netlist: &FlatNetlist, order: &[CellId]) -> Vec<f64> {
    use crate::cell::CellKind;
    let mut p = vec![0.5; netlist.nets().len()];
    for &id in order {
        let cell = netlist.cell(id);
        let input = |pin: usize| p[cell.inputs[pin].index()];
        let out = match cell.kind {
            CellKind::Tie0 => 0.0,
            CellKind::Tie1 => 1.0,
            CellKind::Buf => input(0),
            CellKind::Inv => 1.0 - input(0),
            CellKind::And2 => input(0) * input(1),
            CellKind::And3 => input(0) * input(1) * input(2),
            CellKind::Nand2 => 1.0 - input(0) * input(1),
            CellKind::Nand3 => 1.0 - input(0) * input(1) * input(2),
            CellKind::Or2 => 1.0 - (1.0 - input(0)) * (1.0 - input(1)),
            CellKind::Or3 => 1.0 - (1.0 - input(0)) * (1.0 - input(1)) * (1.0 - input(2)),
            CellKind::Nor2 => (1.0 - input(0)) * (1.0 - input(1)),
            CellKind::Nor3 => (1.0 - input(0)) * (1.0 - input(1)) * (1.0 - input(2)),
            CellKind::Xor2 => {
                let (a, b) = (input(0), input(1));
                a * (1.0 - b) + b * (1.0 - a)
            }
            CellKind::Xnor2 => {
                let (a, b) = (input(0), input(1));
                1.0 - (a * (1.0 - b) + b * (1.0 - a))
            }
            // Mux2 pins: D0, D1, S.
            CellKind::Mux2 => {
                let (d0, d1, s) = (input(0), input(1), input(2));
                (1.0 - s) * d0 + s * d1
            }
            // Y = !((A & B) | C)
            CellKind::Aoi21 => (1.0 - input(0) * input(1)) * (1.0 - input(2)),
            // Y = !((A | B) & C)
            CellKind::Oai21 => 1.0 - (1.0 - (1.0 - input(0)) * (1.0 - input(1))) * input(2),
            // State-holding cells are pseudo-PIs; levelization excludes
            // them from `order`, so this arm is unreachable but keeps the
            // match exhaustive against new combinational kinds.
            _ => 0.5,
        };
        p[cell.output.index()] = out;
    }
    p
}

/// COP backward pass: per-net probability that a value flip propagates to
/// an observation point (primary output or state-holding cell input).
///
/// Observation nets start at 1.0; each combinational cell, visited in
/// reverse levelized order, passes `obs(output) * sensitization(pin)` back
/// to each input net, where the sensitization probability is the chance
/// the other inputs let the pin control the output. Reconvergent paths
/// take the max over branches.
fn cop_observability(netlist: &FlatNetlist, order: &[CellId], p: &[f64]) -> Vec<f64> {
    use crate::cell::CellKind;
    let mut obs = vec![0.0; netlist.nets().len()];
    for &out in netlist.primary_outputs() {
        obs[out.index()] = 1.0;
    }
    for (_, cell) in netlist.iter_cells() {
        if cell.kind.is_sequential() {
            for &input in cell.inputs {
                obs[input.index()] = 1.0;
            }
        }
    }
    for &id in order.iter().rev() {
        let cell = netlist.cell(id);
        let out_obs = obs[cell.output.index()];
        if out_obs == 0.0 {
            continue;
        }
        let ip = |pin: usize| p[cell.inputs[pin].index()];
        for (pin, &input) in cell.inputs.iter().enumerate() {
            let sens = match cell.kind {
                CellKind::Buf | CellKind::Inv | CellKind::Xor2 | CellKind::Xnor2 => 1.0,
                CellKind::And2 | CellKind::Nand2 => ip(1 - pin),
                CellKind::Or2 | CellKind::Nor2 => 1.0 - ip(1 - pin),
                CellKind::And3 | CellKind::Nand3 => {
                    let others: f64 = (0..3).filter(|&j| j != pin).map(ip).product();
                    others
                }
                CellKind::Or3 | CellKind::Nor3 => {
                    (0..3).filter(|&j| j != pin).map(|j| 1.0 - ip(j)).product()
                }
                // Mux2 pins: D0, D1, S. A data pin controls the output
                // when selected; the select controls it when D0 != D1.
                CellKind::Mux2 => match pin {
                    0 => 1.0 - ip(2),
                    1 => ip(2),
                    _ => ip(0) * (1.0 - ip(1)) + ip(1) * (1.0 - ip(0)),
                },
                // Y = !((A & B) | C): A controls when B=1 and C=0; C
                // controls when A&B=0.
                CellKind::Aoi21 => match pin {
                    0 => ip(1) * (1.0 - ip(2)),
                    1 => ip(0) * (1.0 - ip(2)),
                    _ => 1.0 - ip(0) * ip(1),
                },
                // Y = !((A | B) & C): A controls when B=0 and C=1; C
                // controls when A|B=1.
                CellKind::Oai21 => match pin {
                    0 => (1.0 - ip(1)) * ip(2),
                    1 => (1.0 - ip(0)) * ip(2),
                    _ => 1.0 - (1.0 - ip(0)) * (1.0 - ip(1)),
                },
                // Tie cells have no inputs; state-holding kinds are not
                // levelized.
                _ => 0.0,
            };
            let through = out_obs * sens;
            if through > obs[input.index()] {
                obs[input.index()] = through;
            }
        }
    }
    obs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;
    use crate::design::{Design, ModuleBuilder, PortDir};

    fn pipeline_netlist() -> FlatNetlist {
        // in -> INV -> AND(+in2) -> DFF -> BUF -> out
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("pipe");
        let clk = mb.port("clk", PortDir::Input);
        let a = mb.port("a", PortDir::Input);
        let b = mb.port("b", PortDir::Input);
        let y = mb.port("y", PortDir::Output);
        let na = mb.net("na");
        let anded = mb.net("anded");
        let q = mb.net("q");
        mb.cell("u_inv", CellKind::Inv, &[a], &[na]).unwrap();
        mb.cell("u_and", CellKind::And2, &[na, b], &[anded])
            .unwrap();
        mb.cell("u_ff", CellKind::Dff, &[clk, anded], &[q]).unwrap();
        mb.cell("u_buf", CellKind::Buf, &[q], &[y]).unwrap();
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        design.flatten().unwrap()
    }

    #[test]
    fn module_class_inference() {
        let class = |s: &str| ModuleClass::infer(&[s.to_string()]);
        assert_eq!(class("u_cpu0"), ModuleClass::Cpu);
        assert_eq!(class("riscv_core"), ModuleClass::Cpu);
        assert_eq!(class("axi_xbar"), ModuleClass::Bus);
        assert_eq!(class("apb_bridge"), ModuleClass::Bus);
        assert_eq!(class("sram_bank"), ModuleClass::Memory);
        assert_eq!(class("u_pll"), ModuleClass::Other);
        assert_eq!(ModuleClass::infer(&[]), ModuleClass::Other);
    }

    #[test]
    fn feature_vector_has_documented_width() {
        let flat = pipeline_netlist();
        let fx = FeatureExtractor::new(&flat).unwrap();
        let feats = fx.extract(None);
        assert_eq!(feats.len(), 4);
        for f in &feats {
            assert_eq!(f.values.len(), STRUCTURAL_FEATURE_NAMES.len());
        }
    }

    #[test]
    fn observation_distance_decreases_toward_outputs() {
        let flat = pipeline_netlist();
        let fx = FeatureExtractor::new(&flat).unwrap();
        let idx = |name: &str| flat.cell_by_name(name).unwrap().index();
        // u_buf drives the primary output: distance 0.
        assert_eq!(fx.depth_obs[idx("u_buf")], 0);
        // u_and feeds the DFF: distance 1.
        assert_eq!(fx.depth_obs[idx("u_and")], 1);
        // u_inv is one hop further.
        assert_eq!(fx.depth_obs[idx("u_inv")], 2);
    }

    #[test]
    fn forward_depth_matches_levelization() {
        let flat = pipeline_netlist();
        let fx = FeatureExtractor::new(&flat).unwrap();
        let feats = fx.extract(None);
        let inv = flat.cell_by_name("u_inv").unwrap();
        let and = flat.cell_by_name("u_and").unwrap();
        let depth = |id: CellId| {
            feats
                .iter()
                .find(|f| f.cell == id)
                .map(|f| f.values[2])
                .unwrap()
        };
        assert_eq!(depth(inv), 0.0);
        assert_eq!(depth(and), 1.0);
    }

    #[test]
    fn activity_is_looked_up_per_output_net() {
        let flat = pipeline_netlist();
        let fx = FeatureExtractor::new(&flat).unwrap();
        let mut activity = vec![0.0; flat.nets().len()];
        let q = flat.net_by_name("q").unwrap();
        activity[q.index()] = 0.5;
        let ff = flat.cell_by_name("u_ff").unwrap();
        let feats = fx.extract_cell(ff, Some(&activity));
        assert_eq!(*feats.values.last().unwrap(), 0.5);
    }

    #[test]
    fn sequential_flag_set_only_for_ffs() {
        let flat = pipeline_netlist();
        let fx = FeatureExtractor::new(&flat).unwrap();
        for f in fx.extract(None) {
            let is_seq = flat.cell(f.cell).kind.is_sequential();
            assert_eq!(f.values[5] == 1.0, is_seq);
        }
    }

    #[test]
    fn dead_end_cell_saturates_depth_obs() {
        // u_dead drives a net with no loads that is not a primary output:
        // no observation point is reachable, so the u32 sentinel applies.
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("top");
        let a = mb.port("a", PortDir::Input);
        let y = mb.port("y", PortDir::Output);
        let w = mb.net("w");
        mb.cell("u0", CellKind::Inv, &[a], &[y]).unwrap();
        mb.cell("u_dead", CellKind::Inv, &[a], &[w]).unwrap();
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        let flat = design.flatten().unwrap();

        let fx = FeatureExtractor::new(&flat).unwrap();
        let dead = flat.cell_by_name("u_dead").unwrap();
        let feats = fx.extract_cell(dead, None);
        // The sentinel must never leak into the feature vector as a giant
        // finite value; it saturates at the named cap.
        assert_eq!(feats.values[3], DEPTH_OBS_SATURATED);
        for &v in &feats.values {
            assert!(v.is_finite() && v <= DEPTH_OBS_SATURATED.max(100.0), "{v}");
        }
        // An observable cell keeps its real (small) distance.
        let live = flat.cell_by_name("u0").unwrap();
        assert_eq!(fx.extract_cell(live, None).values[3], 0.0);
    }

    fn feature_index(name: &str) -> usize {
        STRUCTURAL_FEATURE_NAMES
            .iter()
            .position(|&n| n == name)
            .unwrap()
    }

    #[test]
    fn cone_sizes_count_transitive_neighbors() {
        let flat = pipeline_netlist();
        let fx = FeatureExtractor::new(&flat).unwrap();
        let feats = |name: &str| fx.extract_cell(flat.cell_by_name(name).unwrap(), None);
        let fanin = feature_index("fanin_cone");
        let fanout = feature_index("fanout_cone");
        // u_inv has no cell drivers upstream, and everything downstream.
        let inv = feats("u_inv");
        assert_eq!(inv.values[fanin], 0.0);
        assert_eq!(inv.values[fanout], 3.0); // and, ff, buf
                                             // u_buf sees the whole chain upstream and nothing downstream.
        let buf = feats("u_buf");
        assert_eq!(buf.values[fanin], 3.0);
        assert_eq!(buf.values[fanout], 0.0);
    }

    #[test]
    fn cone_size_saturates_at_cap() {
        // A root driving CONE_CAP + 8 loads must report exactly CONE_CAP.
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("wide");
        let a = mb.port("a", PortDir::Input);
        let w = mb.net("w");
        mb.cell("u_root", CellKind::Buf, &[a], &[w]).unwrap();
        for i in 0..(CONE_CAP + 8) {
            let y = mb.port(format!("y{i}"), PortDir::Output);
            mb.cell(format!("u{i}"), CellKind::Inv, &[w], &[y]).unwrap();
        }
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        let flat = design.flatten().unwrap();
        let fx = FeatureExtractor::new(&flat).unwrap();
        let root = flat.cell_by_name("u_root").unwrap();
        let v = fx.extract_cell(root, None);
        assert_eq!(v.values[feature_index("fanout_cone")], CONE_CAP as f64);
    }

    #[test]
    fn po_and_ff_depths_follow_the_pipeline() {
        let flat = pipeline_netlist();
        let fx = FeatureExtractor::new(&flat).unwrap();
        let depth = |name: &str, feat: &str| {
            fx.extract_cell(flat.cell_by_name(name).unwrap(), None)
                .values[feature_index(feat)]
        };
        // u_buf drives the PO directly; u_ff is one hop behind it; the
        // logic upstream of the FF is separated from the PO by the FF.
        assert_eq!(depth("u_buf", "depth_po"), 0.0);
        assert_eq!(depth("u_ff", "depth_po"), 1.0);
        assert_eq!(depth("u_and", "depth_po"), 2.0);
        // u_and feeds the FF data pin directly; u_inv is one hop further;
        // u_buf never reaches a flip-flop input.
        assert_eq!(depth("u_and", "depth_ff"), 0.0);
        assert_eq!(depth("u_inv", "depth_ff"), 1.0);
        assert_eq!(depth("u_buf", "depth_ff"), DEPTH_OBS_SATURATED);
    }

    #[test]
    fn cop_probabilities_match_hand_computation() {
        let flat = pipeline_netlist();
        let fx = FeatureExtractor::new(&flat).unwrap();
        let value = |name: &str, feat: &str| {
            fx.extract_cell(flat.cell_by_name(name).unwrap(), None)
                .values[feature_index(feat)]
        };
        // p(na) = 1 - 0.5 = 0.5; p(anded) = p(na) * p(b) = 0.25.
        assert_eq!(value("u_inv", "cop_ctrl"), 0.5);
        assert_eq!(value("u_and", "cop_ctrl"), 0.25);
        // FF output is a pseudo-PI at 0.5; the buffer copies it.
        assert_eq!(value("u_buf", "cop_ctrl"), 0.5);
        // u_buf drives the PO: fully observable.
        assert_eq!(value("u_buf", "cop_obs"), 1.0);
        // u_and feeds the FF data input: fully observable.
        assert_eq!(value("u_and", "cop_obs"), 1.0);
        // u_inv is observed through the AND gate, sensitized when b=1.
        assert_eq!(value("u_inv", "cop_obs"), 0.5);
        // cop_product = obs * 2p(1-p): u_and has p=0.25, obs=1.
        assert_eq!(value("u_and", "cop_product"), 2.0 * 0.25 * 0.75);
        // Every COP value stays a probability.
        for f in fx.extract(None) {
            for feat in ["cop_ctrl", "cop_obs", "cop_product"] {
                let v = f.values[feature_index(feat)];
                assert!((0.0..=1.0).contains(&v), "{feat} = {v}");
            }
        }
    }
}
