//! Structural feature extraction for sensitive-node classification.
//!
//! The SSRESF SVM classifier (paper §III-E) learns from "structural features
//! of the netlist". This module computes, for every cell of a
//! [`FlatNetlist`], the candidate feature set from which the paper's forward
//! feature selection (Fig. 5) picks the best subset:
//!
//! | index | name | description |
//! |---|---|---|
//! | 0 | `fanout` | loads on the cell's output net |
//! | 1 | `fanin` | number of input pins |
//! | 2 | `depth_fwd` | combinational depth from the nearest source |
//! | 3 | `depth_obs` | cell hops to the nearest observation point |
//! | 4 | `transistors` | transistor-count complexity proxy |
//! | 5 | `is_sequential` | 1 for state-holding cells |
//! | 6 | `hier_depth` | hierarchy depth of the instance path |
//! | 7 | `is_cpu` | one-hot module class: CPU logic |
//! | 8 | `is_bus` | one-hot module class: bus fabric |
//! | 9 | `is_memory` | one-hot module class: memory |
//! | 10 | `neighborhood` | distinct cells at distance 1 |
//! | 11 | `activity` | toggle activity of the output net (from simulation) |

use crate::flat::{CellId, Driver, FlatNetlist};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Names of the candidate features, indexed like the extracted vectors.
pub const STRUCTURAL_FEATURE_NAMES: &[&str] = &[
    "fanout",
    "fanin",
    "depth_fwd",
    "depth_obs",
    "transistors",
    "is_sequential",
    "hier_depth",
    "is_cpu",
    "is_bus",
    "is_memory",
    "neighborhood",
    "activity",
];

/// Coarse functional class of the module containing a cell, inferred from
/// its hierarchical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModuleClass {
    /// CPU core logic.
    Cpu,
    /// Bus/interconnect fabric.
    Bus,
    /// Memory arrays and their periphery.
    Memory,
    /// Anything else (pads, clocking, glue).
    Other,
}

impl ModuleClass {
    /// Infers the class from a hierarchical path's segments.
    ///
    /// Matching is case-insensitive on well-known substrings (`cpu`/`core`,
    /// `bus`/`axi`/`ahb`/`apb`/`noc`, `mem`/`ram`/`sram`/`dram`).
    pub fn infer(segments: &[String]) -> ModuleClass {
        for seg in segments {
            let s = seg.to_ascii_lowercase();
            if s.contains("cpu") || s.contains("core") {
                return ModuleClass::Cpu;
            }
            if s.contains("bus")
                || s.contains("axi")
                || s.contains("ahb")
                || s.contains("apb")
                || s.contains("noc")
            {
                return ModuleClass::Bus;
            }
            if s.contains("mem") || s.contains("ram") {
                return ModuleClass::Memory;
            }
        }
        ModuleClass::Other
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            ModuleClass::Cpu => "cpu",
            ModuleClass::Bus => "bus",
            ModuleClass::Memory => "memory",
            ModuleClass::Other => "other",
        }
    }
}

impl std::fmt::Display for ModuleClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The extracted feature record of one cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellFeatures {
    /// The cell this record describes.
    pub cell: CellId,
    /// Inferred module class.
    pub module_class: ModuleClass,
    /// Feature values, indexed like [`STRUCTURAL_FEATURE_NAMES`].
    pub values: Vec<f64>,
}

/// Computes [`CellFeatures`] for every cell of a netlist.
///
/// # Example
///
/// ```
/// use ssresf_netlist::{CellKind, Design, FeatureExtractor, ModuleBuilder, PortDir};
///
/// # fn main() -> Result<(), ssresf_netlist::NetlistError> {
/// let mut design = Design::new();
/// let mut mb = ModuleBuilder::new("top");
/// let a = mb.port("a", PortDir::Input);
/// let y = mb.port("y", PortDir::Output);
/// mb.cell("u0", CellKind::Inv, &[a], &[y])?;
/// let id = design.add_module(mb.finish())?;
/// design.set_top(id)?;
/// let flat = design.flatten()?;
/// let features = FeatureExtractor::new(&flat)?.extract(None);
/// assert_eq!(features.len(), 1);
/// assert_eq!(features[0].values.len(), 12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FeatureExtractor<'a> {
    netlist: &'a FlatNetlist,
    depth_fwd: Vec<u32>,
    depth_obs: Vec<u32>,
}

/// Sentinel observation distance for cells from which no observation point
/// is reachable.
///
/// Real BFS distances are bounded by the cell count, which elaboration caps
/// below `u32::MAX - 2` (see [`NetlistError::TooLarge`](crate::NetlistError)),
/// so a finite distance can never collide with the sentinel.
const UNOBSERVABLE: u32 = u32::MAX;

/// Feature-space substitute for [`UNOBSERVABLE`]: dead-end cells enter
/// scaling as this saturated depth, never as the raw `u32` sentinel (which
/// would dwarf every other feature and wreck normalization).
pub const DEPTH_OBS_SATURATED: f64 = 64.0;

impl<'a> FeatureExtractor<'a> {
    /// Prepares depth maps for `netlist`.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::CombinationalLoop`](crate::NetlistError::CombinationalLoop)
    /// from levelization.
    pub fn new(netlist: &'a FlatNetlist) -> Result<Self, crate::NetlistError> {
        let lv = netlist.levelize()?;
        let depth_obs = observation_distances(netlist);
        Ok(FeatureExtractor {
            netlist,
            depth_fwd: lv.cell_depth,
            depth_obs,
        })
    }

    /// Extracts features for all cells.
    ///
    /// `activity` optionally supplies per-net toggle activity (in toggles per
    /// cycle) measured by a golden simulation; when absent the activity
    /// feature is 0 for every cell.
    pub fn extract(&self, activity: Option<&[f64]>) -> Vec<CellFeatures> {
        self.netlist
            .iter_cells()
            .map(|(id, _)| self.extract_cell(id, activity))
            .collect()
    }

    /// Extracts the feature record of a single cell.
    pub fn extract_cell(&self, id: CellId, activity: Option<&[f64]>) -> CellFeatures {
        let netlist = self.netlist;
        let cell = netlist.cell(id);
        let path = netlist.paths().resolve(cell.path);
        let module_class = ModuleClass::infer(path.segments());

        let fanout = netlist.fanout(cell.output) as f64;
        let fanin = cell.inputs.len() as f64;
        let depth_fwd = f64::from(self.depth_fwd[id.index()]);
        let depth_obs = match self.depth_obs[id.index()] {
            UNOBSERVABLE => DEPTH_OBS_SATURATED,
            d => f64::from(d),
        };
        let transistors = f64::from(cell.kind.transistor_count());
        let is_sequential = if cell.kind.is_sequential() { 1.0 } else { 0.0 };
        let hier_depth = path.depth() as f64;
        let (is_cpu, is_bus, is_memory) = match module_class {
            ModuleClass::Cpu => (1.0, 0.0, 0.0),
            ModuleClass::Bus => (0.0, 1.0, 0.0),
            ModuleClass::Memory => (0.0, 0.0, 1.0),
            ModuleClass::Other => (0.0, 0.0, 0.0),
        };
        let neighborhood = neighborhood_size(netlist, id) as f64;
        let act = activity.map(|a| a[cell.output.index()]).unwrap_or(0.0);

        CellFeatures {
            cell: id,
            module_class,
            values: vec![
                fanout,
                fanin,
                depth_fwd,
                depth_obs,
                transistors,
                is_sequential,
                hier_depth,
                is_cpu,
                is_bus,
                is_memory,
                neighborhood,
                act,
            ],
        }
    }
}

/// Number of distinct cells adjacent to `id` (input drivers plus output loads).
fn neighborhood_size(netlist: &FlatNetlist, id: CellId) -> usize {
    let cell = netlist.cell(id);
    let loads = netlist.net(cell.output).loads;
    // Sort + dedup rather than a `contains` scan per candidate: a memory
    // macro's write-enable or address driver fans out to tens of thousands
    // of loads, and the quadratic scan dominated whole-chip extraction.
    let mut neighbors: Vec<CellId> = Vec::with_capacity(cell.inputs.len() + loads.len());
    for &input in cell.inputs {
        if let Some(Driver::Cell(driver)) = netlist.net(input).driver {
            if driver != id {
                neighbors.push(driver);
            }
        }
    }
    for &(load, _) in loads {
        if load != id {
            neighbors.push(load);
        }
    }
    neighbors.sort_unstable();
    neighbors.dedup();
    neighbors.len()
}

/// Per-cell hop distance to the nearest observation point: a primary output
/// net (distance 0) or a sequential cell's data input (distance 1).
fn observation_distances(netlist: &FlatNetlist) -> Vec<u32> {
    let mut dist = vec![UNOBSERVABLE; netlist.cells().len()];
    let mut queue = VecDeque::new();

    // Seeds at distance 0: cells driving a primary output.
    for &out in netlist.primary_outputs() {
        if let Some(Driver::Cell(cell)) = netlist.net(out).driver {
            if dist[cell.index()] > 0 {
                dist[cell.index()] = 0;
                queue.push_back(cell);
            }
        }
    }
    // Seeds at distance 1: cells feeding any sequential cell.
    for (_, cell) in netlist.iter_cells() {
        if !cell.kind.is_sequential() {
            continue;
        }
        for &input in cell.inputs {
            if let Some(Driver::Cell(driver)) = netlist.net(input).driver {
                if dist[driver.index()] > 1 {
                    dist[driver.index()] = 1;
                    queue.push_back(driver);
                }
            }
        }
    }

    // BFS backward through input drivers. The queue was seeded in
    // nondecreasing distance order (all 0s pushed before any 1s only if we
    // pushed them that way — they were), so plain BFS yields shortest hops.
    while let Some(cell) = queue.pop_front() {
        let d = dist[cell.index()];
        for &input in netlist.cell(cell).inputs {
            if let Some(Driver::Cell(driver)) = netlist.net(input).driver {
                if dist[driver.index()] > d + 1 {
                    dist[driver.index()] = d + 1;
                    queue.push_back(driver);
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;
    use crate::design::{Design, ModuleBuilder, PortDir};

    fn pipeline_netlist() -> FlatNetlist {
        // in -> INV -> AND(+in2) -> DFF -> BUF -> out
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("pipe");
        let clk = mb.port("clk", PortDir::Input);
        let a = mb.port("a", PortDir::Input);
        let b = mb.port("b", PortDir::Input);
        let y = mb.port("y", PortDir::Output);
        let na = mb.net("na");
        let anded = mb.net("anded");
        let q = mb.net("q");
        mb.cell("u_inv", CellKind::Inv, &[a], &[na]).unwrap();
        mb.cell("u_and", CellKind::And2, &[na, b], &[anded])
            .unwrap();
        mb.cell("u_ff", CellKind::Dff, &[clk, anded], &[q]).unwrap();
        mb.cell("u_buf", CellKind::Buf, &[q], &[y]).unwrap();
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        design.flatten().unwrap()
    }

    #[test]
    fn module_class_inference() {
        let class = |s: &str| ModuleClass::infer(&[s.to_string()]);
        assert_eq!(class("u_cpu0"), ModuleClass::Cpu);
        assert_eq!(class("riscv_core"), ModuleClass::Cpu);
        assert_eq!(class("axi_xbar"), ModuleClass::Bus);
        assert_eq!(class("apb_bridge"), ModuleClass::Bus);
        assert_eq!(class("sram_bank"), ModuleClass::Memory);
        assert_eq!(class("u_pll"), ModuleClass::Other);
        assert_eq!(ModuleClass::infer(&[]), ModuleClass::Other);
    }

    #[test]
    fn feature_vector_has_documented_width() {
        let flat = pipeline_netlist();
        let fx = FeatureExtractor::new(&flat).unwrap();
        let feats = fx.extract(None);
        assert_eq!(feats.len(), 4);
        for f in &feats {
            assert_eq!(f.values.len(), STRUCTURAL_FEATURE_NAMES.len());
        }
    }

    #[test]
    fn observation_distance_decreases_toward_outputs() {
        let flat = pipeline_netlist();
        let fx = FeatureExtractor::new(&flat).unwrap();
        let idx = |name: &str| flat.cell_by_name(name).unwrap().index();
        // u_buf drives the primary output: distance 0.
        assert_eq!(fx.depth_obs[idx("u_buf")], 0);
        // u_and feeds the DFF: distance 1.
        assert_eq!(fx.depth_obs[idx("u_and")], 1);
        // u_inv is one hop further.
        assert_eq!(fx.depth_obs[idx("u_inv")], 2);
    }

    #[test]
    fn forward_depth_matches_levelization() {
        let flat = pipeline_netlist();
        let fx = FeatureExtractor::new(&flat).unwrap();
        let feats = fx.extract(None);
        let inv = flat.cell_by_name("u_inv").unwrap();
        let and = flat.cell_by_name("u_and").unwrap();
        let depth = |id: CellId| {
            feats
                .iter()
                .find(|f| f.cell == id)
                .map(|f| f.values[2])
                .unwrap()
        };
        assert_eq!(depth(inv), 0.0);
        assert_eq!(depth(and), 1.0);
    }

    #[test]
    fn activity_is_looked_up_per_output_net() {
        let flat = pipeline_netlist();
        let fx = FeatureExtractor::new(&flat).unwrap();
        let mut activity = vec![0.0; flat.nets().len()];
        let q = flat.net_by_name("q").unwrap();
        activity[q.index()] = 0.5;
        let ff = flat.cell_by_name("u_ff").unwrap();
        let feats = fx.extract_cell(ff, Some(&activity));
        assert_eq!(*feats.values.last().unwrap(), 0.5);
    }

    #[test]
    fn sequential_flag_set_only_for_ffs() {
        let flat = pipeline_netlist();
        let fx = FeatureExtractor::new(&flat).unwrap();
        for f in fx.extract(None) {
            let is_seq = flat.cell(f.cell).kind.is_sequential();
            assert_eq!(f.values[5] == 1.0, is_seq);
        }
    }

    #[test]
    fn dead_end_cell_saturates_depth_obs() {
        // u_dead drives a net with no loads that is not a primary output:
        // no observation point is reachable, so the u32 sentinel applies.
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("top");
        let a = mb.port("a", PortDir::Input);
        let y = mb.port("y", PortDir::Output);
        let w = mb.net("w");
        mb.cell("u0", CellKind::Inv, &[a], &[y]).unwrap();
        mb.cell("u_dead", CellKind::Inv, &[a], &[w]).unwrap();
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        let flat = design.flatten().unwrap();

        let fx = FeatureExtractor::new(&flat).unwrap();
        let dead = flat.cell_by_name("u_dead").unwrap();
        let feats = fx.extract_cell(dead, None);
        // The sentinel must never leak into the feature vector as a giant
        // finite value; it saturates at the named cap.
        assert_eq!(feats.values[3], DEPTH_OBS_SATURATED);
        for &v in &feats.values {
            assert!(v.is_finite() && v <= DEPTH_OBS_SATURATED.max(100.0), "{v}");
        }
        // An observable cell keeps its real (small) distance.
        let live = flat.cell_by_name("u0").unwrap();
        assert_eq!(fx.extract_cell(live, None).values[3], 0.0);
    }
}
