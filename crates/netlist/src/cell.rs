//! The standard-cell library understood by SSRESF.
//!
//! Every primitive cell has a fixed pin convention: a list of named input
//! pins followed by exactly one output pin. Sequential cells are clocked on
//! the rising edge of their `CLK` pin. Memory bit cells ([`CellKind::SramBit`],
//! [`CellKind::DramBit`], [`CellKind::RadHardBit`]) behave like write-enabled
//! flip-flops but carry distinct [`RadiationClass`]es so the radiation model
//! can assign them different single-event cross-sections.

use serde::{Deserialize, Serialize};

/// Kind of a primitive standard cell.
///
/// The pin conventions (in order) are documented per variant; the single
/// output pin is named `Y` for combinational cells, `Q` for sequential cells
/// and `O` for tie cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Constant 0 driver. Pins: `O`.
    Tie0,
    /// Constant 1 driver. Pins: `O`.
    Tie1,
    /// Buffer. Pins: `A` → `Y`.
    Buf,
    /// Inverter. Pins: `A` → `Y`.
    Inv,
    /// 2-input AND. Pins: `A`, `B` → `Y`.
    And2,
    /// 2-input OR. Pins: `A`, `B` → `Y`.
    Or2,
    /// 2-input NAND. Pins: `A`, `B` → `Y`.
    Nand2,
    /// 2-input NOR. Pins: `A`, `B` → `Y`.
    Nor2,
    /// 2-input XOR. Pins: `A`, `B` → `Y`.
    Xor2,
    /// 2-input XNOR. Pins: `A`, `B` → `Y`.
    Xnor2,
    /// 3-input AND. Pins: `A`, `B`, `C` → `Y`.
    And3,
    /// 3-input OR. Pins: `A`, `B`, `C` → `Y`.
    Or3,
    /// 3-input NAND. Pins: `A`, `B`, `C` → `Y`.
    Nand3,
    /// 3-input NOR. Pins: `A`, `B`, `C` → `Y`.
    Nor3,
    /// 2:1 multiplexer, `Y = S ? D1 : D0`. Pins: `D0`, `D1`, `S` → `Y`.
    Mux2,
    /// AND-OR-invert, `Y = !((A & B) | C)`. Pins: `A`, `B`, `C` → `Y`.
    Aoi21,
    /// OR-AND-invert, `Y = !((A | B) & C)`. Pins: `A`, `B`, `C` → `Y`.
    Oai21,
    /// Rising-edge D flip-flop. Pins: `CLK`, `D` → `Q`.
    Dff,
    /// D flip-flop with asynchronous active-low reset. Pins: `CLK`, `D`, `RSTN` → `Q`.
    Dffr,
    /// D flip-flop with clock enable. Pins: `CLK`, `D`, `EN` → `Q`.
    Dffe,
    /// D flip-flop with async active-low reset and enable.
    /// Pins: `CLK`, `D`, `RSTN`, `EN` → `Q`.
    Dffre,
    /// Level-sensitive latch, transparent while `EN` is high. Pins: `EN`, `D` → `Q`.
    Latch,
    /// Radiation-hardened (DICE) D flip-flop; pin- and behavior-compatible
    /// with [`CellKind::Dff`] but roughly twice the area and a strongly
    /// reduced SEU cross-section. Pins: `CLK`, `D` → `Q`.
    HardDff,
    /// Radiation-hardened D flip-flop with active-low reset; pin- and
    /// behavior-compatible with [`CellKind::Dffr`]. Pins: `CLK`, `D`, `RSTN` → `Q`.
    HardDffr,
    /// Six-transistor SRAM storage bit. Pins: `CLK`, `WE`, `D` → `Q`.
    SramBit,
    /// One-transistor-one-capacitor DRAM storage bit. Pins: `CLK`, `WE`, `D` → `Q`.
    DramBit,
    /// Radiation-hardened (e.g. DICE) SRAM storage bit. Pins: `CLK`, `WE`, `D` → `Q`.
    RadHardBit,
}

/// Radiation susceptibility class of a cell, used to select the single-event
/// cross-section curve in the radiation model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RadiationClass {
    /// Combinational logic: susceptible to single-event transients (SET).
    Combinational,
    /// Flip-flops and latches: susceptible to single-event upsets (SEU).
    FlipFlop,
    /// SRAM bit cells: high SEU susceptibility.
    SramCell,
    /// DRAM bit cells: capacitive storage, lower direct-upset susceptibility.
    DramCell,
    /// Radiation-hardened storage: strongly reduced SEU susceptibility.
    RadHardCell,
}

/// All cell kinds, in a stable order (useful for exhaustive iteration in
/// tests and table generation).
pub const ALL_CELL_KINDS: &[CellKind] = &[
    CellKind::Tie0,
    CellKind::Tie1,
    CellKind::Buf,
    CellKind::Inv,
    CellKind::And2,
    CellKind::Or2,
    CellKind::Nand2,
    CellKind::Nor2,
    CellKind::Xor2,
    CellKind::Xnor2,
    CellKind::And3,
    CellKind::Or3,
    CellKind::Nand3,
    CellKind::Nor3,
    CellKind::Mux2,
    CellKind::Aoi21,
    CellKind::Oai21,
    CellKind::Dff,
    CellKind::Dffr,
    CellKind::Dffe,
    CellKind::Dffre,
    CellKind::Latch,
    CellKind::HardDff,
    CellKind::HardDffr,
    CellKind::SramBit,
    CellKind::DramBit,
    CellKind::RadHardBit,
];

impl CellKind {
    /// Library name of the cell, as emitted in structural Verilog.
    pub fn name(self) -> &'static str {
        match self {
            CellKind::Tie0 => "TIE0",
            CellKind::Tie1 => "TIE1",
            CellKind::Buf => "BUF",
            CellKind::Inv => "INV",
            CellKind::And2 => "AND2",
            CellKind::Or2 => "OR2",
            CellKind::Nand2 => "NAND2",
            CellKind::Nor2 => "NOR2",
            CellKind::Xor2 => "XOR2",
            CellKind::Xnor2 => "XNOR2",
            CellKind::And3 => "AND3",
            CellKind::Or3 => "OR3",
            CellKind::Nand3 => "NAND3",
            CellKind::Nor3 => "NOR3",
            CellKind::Mux2 => "MUX2",
            CellKind::Aoi21 => "AOI21",
            CellKind::Oai21 => "OAI21",
            CellKind::Dff => "DFF",
            CellKind::Dffr => "DFFR",
            CellKind::Dffe => "DFFE",
            CellKind::Dffre => "DFFRE",
            CellKind::Latch => "LATCH",
            CellKind::HardDff => "HDFF",
            CellKind::HardDffr => "HDFFR",
            CellKind::SramBit => "SRAMB",
            CellKind::DramBit => "DRAMB",
            CellKind::RadHardBit => "RHSRAMB",
        }
    }

    /// Looks up a cell kind from its library [`name`](CellKind::name).
    pub fn from_name(name: &str) -> Option<CellKind> {
        ALL_CELL_KINDS.iter().copied().find(|k| k.name() == name)
    }

    /// Names of the input pins, in canonical connection order.
    pub fn input_pins(self) -> &'static [&'static str] {
        match self {
            CellKind::Tie0 | CellKind::Tie1 => &[],
            CellKind::Buf | CellKind::Inv => &["A"],
            CellKind::And2
            | CellKind::Or2
            | CellKind::Nand2
            | CellKind::Nor2
            | CellKind::Xor2
            | CellKind::Xnor2 => &["A", "B"],
            CellKind::And3 | CellKind::Or3 | CellKind::Nand3 | CellKind::Nor3 => &["A", "B", "C"],
            CellKind::Mux2 => &["D0", "D1", "S"],
            CellKind::Aoi21 | CellKind::Oai21 => &["A", "B", "C"],
            CellKind::Dff | CellKind::HardDff => &["CLK", "D"],
            CellKind::Dffr | CellKind::HardDffr => &["CLK", "D", "RSTN"],
            CellKind::Dffe => &["CLK", "D", "EN"],
            CellKind::Dffre => &["CLK", "D", "RSTN", "EN"],
            CellKind::Latch => &["EN", "D"],
            CellKind::SramBit | CellKind::DramBit | CellKind::RadHardBit => &["CLK", "WE", "D"],
        }
    }

    /// Name of the single output pin.
    pub fn output_pin(self) -> &'static str {
        match self {
            CellKind::Tie0 | CellKind::Tie1 => "O",
            k if k.is_sequential() => "Q",
            _ => "Y",
        }
    }

    /// Number of input pins.
    pub fn num_inputs(self) -> usize {
        self.input_pins().len()
    }

    /// Whether the cell holds state (flip-flops, latches and memory bits).
    pub fn is_sequential(self) -> bool {
        matches!(
            self,
            CellKind::Dff
                | CellKind::Dffr
                | CellKind::Dffe
                | CellKind::Dffre
                | CellKind::Latch
                | CellKind::HardDff
                | CellKind::HardDffr
                | CellKind::SramBit
                | CellKind::DramBit
                | CellKind::RadHardBit
        )
    }

    /// Whether the cell is a memory bit cell.
    pub fn is_memory_bit(self) -> bool {
        matches!(
            self,
            CellKind::SramBit | CellKind::DramBit | CellKind::RadHardBit
        )
    }

    /// Whether the cell is purely combinational.
    pub fn is_combinational(self) -> bool {
        !self.is_sequential()
    }

    /// Radiation susceptibility class of the cell.
    pub fn radiation_class(self) -> RadiationClass {
        match self {
            CellKind::SramBit => RadiationClass::SramCell,
            CellKind::DramBit => RadiationClass::DramCell,
            CellKind::RadHardBit => RadiationClass::RadHardCell,
            CellKind::HardDff | CellKind::HardDffr => RadiationClass::RadHardCell,
            k if k.is_sequential() => RadiationClass::FlipFlop,
            _ => RadiationClass::Combinational,
        }
    }

    /// Approximate transistor count, used as a cell-complexity feature and as
    /// an area proxy when scaling cross-sections.
    pub fn transistor_count(self) -> u32 {
        match self {
            CellKind::Tie0 | CellKind::Tie1 => 2,
            CellKind::Inv => 2,
            CellKind::Buf => 4,
            CellKind::Nand2 | CellKind::Nor2 => 4,
            CellKind::And2 | CellKind::Or2 => 6,
            CellKind::Nand3 | CellKind::Nor3 => 6,
            CellKind::And3 | CellKind::Or3 => 8,
            CellKind::Xor2 | CellKind::Xnor2 => 8,
            CellKind::Aoi21 | CellKind::Oai21 => 6,
            CellKind::Mux2 => 10,
            CellKind::Latch => 10,
            CellKind::Dff => 20,
            CellKind::Dffe => 24,
            CellKind::Dffr => 24,
            CellKind::Dffre => 28,
            CellKind::HardDff => 40,
            CellKind::HardDffr => 48,
            CellKind::SramBit => 6,
            CellKind::DramBit => 1,
            CellKind::RadHardBit => 12,
        }
    }
}

impl std::fmt::Display for CellKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_round_trips_for_all_kinds() {
        for &kind in ALL_CELL_KINDS {
            assert_eq!(CellKind::from_name(kind.name()), Some(kind));
        }
    }

    #[test]
    fn from_name_rejects_unknown() {
        assert_eq!(CellKind::from_name("NAND9"), None);
        assert_eq!(CellKind::from_name(""), None);
    }

    #[test]
    fn sequential_cells_output_q() {
        for &kind in ALL_CELL_KINDS {
            if kind.is_sequential() {
                assert_eq!(kind.output_pin(), "Q", "{kind}");
            }
        }
    }

    #[test]
    fn combinational_and_sequential_partition() {
        for &kind in ALL_CELL_KINDS {
            assert_ne!(kind.is_sequential(), kind.is_combinational());
        }
    }

    #[test]
    fn memory_bits_have_memory_radiation_classes() {
        assert_eq!(
            CellKind::SramBit.radiation_class(),
            RadiationClass::SramCell
        );
        assert_eq!(
            CellKind::DramBit.radiation_class(),
            RadiationClass::DramCell
        );
        assert_eq!(
            CellKind::RadHardBit.radiation_class(),
            RadiationClass::RadHardCell
        );
        assert_eq!(CellKind::Dff.radiation_class(), RadiationClass::FlipFlop);
        assert_eq!(
            CellKind::Nand2.radiation_class(),
            RadiationClass::Combinational
        );
    }

    #[test]
    fn pin_counts_are_consistent() {
        assert_eq!(CellKind::Tie0.num_inputs(), 0);
        assert_eq!(CellKind::Mux2.num_inputs(), 3);
        assert_eq!(CellKind::Dffre.num_inputs(), 4);
        for &kind in ALL_CELL_KINDS {
            // Pin names within a cell are unique.
            let pins = kind.input_pins();
            for (i, a) in pins.iter().enumerate() {
                for b in &pins[i + 1..] {
                    assert_ne!(a, b, "{kind}");
                }
            }
        }
    }

    #[test]
    fn transistor_counts_are_positive_and_ordered_sanely() {
        for &kind in ALL_CELL_KINDS {
            assert!(kind.transistor_count() >= 1);
        }
        assert!(CellKind::Dff.transistor_count() > CellKind::Inv.transistor_count());
        assert!(CellKind::RadHardBit.transistor_count() > CellKind::SramBit.transistor_count());
    }
}
