//! Recursive-descent parser for the structural-Verilog subset.

use super::lexer::{lex, Token, TokenKind};
use crate::cell::CellKind;
use crate::design::{Design, ModuleBuilder, PortDir};
use crate::error::NetlistError;

/// Parses structural Verilog into a [`Design`].
///
/// Submodules must be defined before they are instantiated (the order
/// [`write_verilog`](super::write_verilog) emits). The top module is taken
/// from a `// top: <name>` directive when present, otherwise the last module
/// in the file.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for syntax errors, plus the usual design
/// construction errors (duplicate names, arity mismatches, unknown modules).
pub fn parse_verilog(source: &str) -> Result<Design, NetlistError> {
    let (tokens, directives) = lex(source)?;
    let mut parser = Parser {
        tokens: &tokens,
        pos: 0,
    };
    let mut design = Design::new();

    while !parser.at_end() {
        parser.parse_module(&mut design)?;
    }

    let top = match &directives.top {
        Some(name) => Some(
            design
                .module_by_name(name)
                .ok_or_else(|| NetlistError::UnknownModule(name.clone()))?,
        ),
        None => design.modules().len().checked_sub(1).map(|i| {
            design
                .module_by_name(&design.modules()[i].name)
                .expect("just added")
        }),
    };
    if let Some(top) = top {
        design.set_top(top)?;
    }
    Ok(design)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn error(&self, message: impl Into<String>) -> NetlistError {
        NetlistError::Parse {
            line: self.line(),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn bump(&mut self) -> Option<&'a TokenKind> {
        let tok = self.tokens.get(self.pos).map(|t| &t.kind);
        self.pos += 1;
        tok
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), NetlistError> {
        match self.bump() {
            Some(k) if k == kind => Ok(()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error(format!("expected {what}")))
            }
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, NetlistError> {
        match self.bump() {
            Some(TokenKind::Ident(s)) => Ok(s.clone()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error(format!("expected {what}")))
            }
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), NetlistError> {
        let got = self.ident(&format!("keyword `{kw}`"))?;
        if got == kw {
            Ok(())
        } else {
            self.pos -= 1;
            Err(self.error(format!("expected keyword `{kw}`, found `{got}`")))
        }
    }

    fn parse_module(&mut self, design: &mut Design) -> Result<(), NetlistError> {
        self.keyword("module")?;
        let name = self.ident("module name")?;
        let mut mb = ModuleBuilder::new(name);

        // Port name list; directions come from the body declarations.
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut port_names = Vec::new();
        if self.peek() != Some(&TokenKind::RParen) {
            loop {
                port_names.push(self.ident("port name")?);
                match self.peek() {
                    Some(TokenKind::Comma) => {
                        self.bump();
                    }
                    _ => break,
                }
            }
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        self.expect(&TokenKind::Semi, "`;`")?;

        let mut declared: Vec<(String, PortDir)> = Vec::new();
        loop {
            let ident = self.ident("declaration, instantiation or `endmodule`")?;
            match ident.as_str() {
                "endmodule" => break,
                "input" | "output" => {
                    let dir = if ident == "input" {
                        PortDir::Input
                    } else {
                        PortDir::Output
                    };
                    for name in self.name_list()? {
                        declared.push((name, dir));
                    }
                }
                "wire" => {
                    for name in self.name_list()? {
                        mb.net(name);
                    }
                }
                inst_target => {
                    let inst_name = self.ident("instance name")?;
                    let conns = self.connection_list(&mut mb)?;
                    self.add_instance(design, &mut mb, inst_target, inst_name, conns)?;
                }
            }
        }

        // Register ports in header order with their declared directions.
        for name in &port_names {
            let dir = declared
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, d)| *d)
                .ok_or_else(|| self.error(format!("port `{name}` has no direction")))?;
            mb.port(name.clone(), dir);
        }

        design.add_module(mb.finish())?;
        Ok(())
    }

    /// `ident (',' ident)* ';'`
    fn name_list(&mut self) -> Result<Vec<String>, NetlistError> {
        let mut names = vec![self.ident("name")?];
        loop {
            match self.bump() {
                Some(TokenKind::Comma) => names.push(self.ident("name")?),
                Some(TokenKind::Semi) => return Ok(names),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.error("expected `,` or `;`"));
                }
            }
        }
    }

    /// `'(' [.pin(net) (',' .pin(net))*] ')' ';'` — returns `(pin, net)` pairs.
    fn connection_list(
        &mut self,
        mb: &mut ModuleBuilder,
    ) -> Result<Vec<(String, crate::LocalNetId)>, NetlistError> {
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut conns = Vec::new();
        if self.peek() != Some(&TokenKind::RParen) {
            loop {
                self.expect(&TokenKind::Dot, "`.`")?;
                let pin = self.ident("pin name")?;
                self.expect(&TokenKind::LParen, "`(`")?;
                let net_name = self.ident("net name")?;
                self.expect(&TokenKind::RParen, "`)`")?;
                conns.push((pin, mb.net(net_name)));
                match self.peek() {
                    Some(TokenKind::Comma) => {
                        self.bump();
                    }
                    _ => break,
                }
            }
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        self.expect(&TokenKind::Semi, "`;`")?;
        Ok(conns)
    }

    fn add_instance(
        &self,
        design: &Design,
        mb: &mut ModuleBuilder,
        target: &str,
        inst_name: String,
        conns: Vec<(String, crate::LocalNetId)>,
    ) -> Result<(), NetlistError> {
        if let Some(kind) = CellKind::from_name(target) {
            let mut inputs = Vec::with_capacity(kind.num_inputs());
            for pin in kind.input_pins() {
                let net = conns
                    .iter()
                    .find(|(p, _)| p == pin)
                    .map(|(_, n)| *n)
                    .ok_or_else(|| self.error(format!("missing pin `{pin}` on `{inst_name}`")))?;
                inputs.push(net);
            }
            let out_pin = kind.output_pin();
            let output = conns
                .iter()
                .find(|(p, _)| p == out_pin)
                .map(|(_, n)| *n)
                .ok_or_else(|| self.error(format!("missing pin `{out_pin}` on `{inst_name}`")))?;
            if conns.len() != kind.num_inputs() + 1 {
                return Err(self.error(format!("extra connections on `{inst_name}`")));
            }
            mb.cell(inst_name, kind, &inputs, &[output])?;
        } else {
            let module_id = design
                .module_by_name(target)
                .ok_or_else(|| NetlistError::UnknownModule(target.to_owned()))?;
            let module = design.module(module_id);
            let mut ordered = Vec::with_capacity(module.ports.len());
            for port in &module.ports {
                let net = conns
                    .iter()
                    .find(|(p, _)| *p == port.name)
                    .map(|(_, n)| *n)
                    .ok_or_else(|| {
                        self.error(format!("missing port `{}` on `{inst_name}`", port.name))
                    })?;
                ordered.push(net);
            }
            if conns.len() != module.ports.len() {
                return Err(self.error(format!("extra connections on `{inst_name}`")));
            }
            mb.instance(inst_name, module_id, &ordered)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verilog::write_verilog;

    const SAMPLE: &str = "\
// top: top
module leaf (a, y);
  input a;
  output y;
  INV u0 (.A(a), .Y(y));
endmodule

module top (x, z);
  input x;
  output z;
  wire w;
  leaf u_leaf (.a(x), .y(w));
  BUF u_buf (.A(w), .Y(z));
endmodule
";

    #[test]
    fn parses_hierarchical_sample() {
        let design = parse_verilog(SAMPLE).unwrap();
        assert_eq!(design.modules().len(), 2);
        let top = design.top().unwrap();
        assert_eq!(design.module(top).name, "top");
        let flat = design.flatten().unwrap();
        assert_eq!(flat.cells().len(), 2);
        assert!(flat.cell_by_name("u_leaf.u0").is_some());
    }

    #[test]
    fn round_trips_writer_output() {
        let design = parse_verilog(SAMPLE).unwrap();
        let text = write_verilog(&design);
        let reparsed = parse_verilog(&text).unwrap();
        assert_eq!(reparsed.modules().len(), design.modules().len());
        let a = design.flatten().unwrap();
        let b = reparsed.flatten().unwrap();
        assert_eq!(a.cells().len(), b.cells().len());
        assert_eq!(a.nets().len(), b.nets().len());
        for (id, _) in a.iter_cells() {
            let name = a.cell_full_name(id);
            assert!(b.cell_by_name(&name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn defaults_top_to_last_module_without_directive() {
        let src = SAMPLE.trim_start_matches("// top: top\n");
        let design = parse_verilog(src).unwrap();
        assert_eq!(design.module(design.top().unwrap()).name, "top");
    }

    #[test]
    fn rejects_undefined_submodule() {
        let src = "module m (a); input a; ghost u0 (.p(a)); endmodule";
        assert!(matches!(
            parse_verilog(src).unwrap_err(),
            NetlistError::UnknownModule(_)
        ));
    }

    #[test]
    fn rejects_missing_pin() {
        let src = "module m (a, y); input a; output y; INV u0 (.A(a)); endmodule";
        let err = parse_verilog(src).unwrap_err();
        assert!(matches!(err, NetlistError::Parse { .. }), "{err}");
    }

    #[test]
    fn rejects_extra_pin() {
        let src = "module m (a, y); input a; output y; INV u0 (.A(a), .Y(y), .Z(a)); endmodule";
        assert!(parse_verilog(src).is_err());
    }

    #[test]
    fn rejects_port_without_direction() {
        let src = "module m (a); endmodule";
        let err = parse_verilog(src).unwrap_err();
        assert!(matches!(err, NetlistError::Parse { .. }));
    }

    #[test]
    fn rejects_unknown_top_directive() {
        let src = "// top: nosuch\nmodule m (a); input a; endmodule";
        assert!(matches!(
            parse_verilog(src).unwrap_err(),
            NetlistError::UnknownModule(_)
        ));
    }

    #[test]
    fn empty_source_yields_empty_design() {
        let design = parse_verilog("").unwrap();
        assert!(design.modules().is_empty());
        assert!(design.top().is_none());
    }
}
