//! Tokenizer for the structural-Verilog subset.

use crate::error::NetlistError;

/// A lexical token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Token {
    pub kind: TokenKind,
    pub line: usize,
}

/// Token kinds of the structural subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum TokenKind {
    /// `module`, `endmodule`, `input`, `output`, `wire` or an identifier.
    Ident(String),
    LParen,
    RParen,
    Semi,
    Comma,
    Dot,
}

/// Special comment directive `// top: <name>` recognized by the parser.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(crate) struct Directives {
    pub top: Option<String>,
}

/// Tokenizes `source`, stripping `//` line comments and `/* */` block
/// comments, and collecting `// top:` directives.
pub(crate) fn lex(source: &str) -> Result<(Vec<Token>, Directives), NetlistError> {
    let mut tokens = Vec::new();
    let mut directives = Directives::default();
    let bytes = source.as_bytes();
    let mut i = 0;
    let mut line = 1;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = source[i..].find('\n').map(|o| i + o).unwrap_or(bytes.len());
                let comment = &source[i + 2..end];
                if let Some(rest) = comment.trim().strip_prefix("top:") {
                    directives.top = Some(rest.trim().to_owned());
                }
                i = end;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let close = source[i + 2..].find("*/").ok_or(NetlistError::Parse {
                    line,
                    message: "unterminated block comment".into(),
                })?;
                line += source[i..i + 2 + close].matches('\n').count();
                i += close + 4;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    line,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    line,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semi,
                    line,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    line,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    line,
                });
                i += 1;
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < bytes.len() && is_ident_continue(bytes[i] as char) {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(source[start..i].to_owned()),
                    line,
                });
            }
            other => {
                return Err(NetlistError::Parse {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok((tokens, directives))
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == '\\'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '$'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(tokens: &[Token]) -> Vec<&str> {
        tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn lexes_basic_module() {
        let (tokens, _) = lex("module m (a);\nendmodule\n").unwrap();
        assert_eq!(idents(&tokens), vec!["module", "m", "a", "endmodule"]);
        assert!(tokens.iter().any(|t| t.kind == TokenKind::Semi));
    }

    #[test]
    fn strips_comments_and_reads_top_directive() {
        let src = "// top: soc\n/* block\ncomment */ module soc ( ) ; endmodule";
        let (tokens, dir) = lex(src).unwrap();
        assert_eq!(dir.top.as_deref(), Some("soc"));
        assert_eq!(idents(&tokens), vec!["module", "soc", "endmodule"]);
    }

    #[test]
    fn tracks_line_numbers() {
        let (tokens, _) = lex("module\nm\n(\n)\n;\nendmodule").unwrap();
        assert_eq!(tokens.last().unwrap().line, 6);
    }

    #[test]
    fn rejects_unknown_characters() {
        let err = lex("module m #; endmodule").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { .. }));
    }

    #[test]
    fn rejects_unterminated_block_comment() {
        let err = lex("/* never closed").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { .. }));
    }
}
