//! Structural-Verilog interchange.
//!
//! SSRESF consumes and produces gate-level netlists in a structural subset of
//! IEEE 1364 Verilog: `module`/`endmodule`, scalar `input`/`output`/`wire`
//! declarations, and named-connection instantiations of library cells and
//! submodules. [`write_verilog`] emits this subset; [`parse_verilog`] reads
//! it back, so designs round-trip losslessly.
//!
//! # Example
//!
//! ```
//! use ssresf_netlist::{CellKind, Design, ModuleBuilder, PortDir};
//! use ssresf_netlist::verilog::{parse_verilog, write_verilog};
//!
//! # fn main() -> Result<(), ssresf_netlist::NetlistError> {
//! let mut design = Design::new();
//! let mut mb = ModuleBuilder::new("inv_top");
//! let a = mb.port("a", PortDir::Input);
//! let y = mb.port("y", PortDir::Output);
//! mb.cell("u0", CellKind::Inv, &[a], &[y])?;
//! let id = design.add_module(mb.finish())?;
//! design.set_top(id)?;
//!
//! let text = write_verilog(&design);
//! let reparsed = parse_verilog(&text)?;
//! assert_eq!(reparsed.module_by_name("inv_top").is_some(), true);
//! # Ok(())
//! # }
//! ```

mod lexer;
mod parser;
mod writer;

pub use parser::parse_verilog;
pub use writer::write_verilog;
