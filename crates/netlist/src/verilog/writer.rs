//! Emission of designs as structural Verilog.

use crate::design::{Design, Module, PortDir};
use std::fmt::Write as _;

/// Serializes `design` as structural Verilog.
///
/// Modules are emitted in the design's insertion order (bottom-up), so the
/// output is always parseable by [`parse_verilog`](super::parse_verilog),
/// which requires definition before use. The top module, when set, is
/// emitted with a `// top: <name>` header comment honored by the parser.
pub fn write_verilog(design: &Design) -> String {
    let mut out = String::new();
    out.push_str("// Structural netlist emitted by ssresf-netlist\n");
    if let Some(top) = design.top() {
        let _ = writeln!(out, "// top: {}", design.module(top).name);
    }
    for module in design.modules() {
        write_module(&mut out, design, module);
    }
    out
}

fn write_module(out: &mut String, design: &Design, module: &Module) {
    let port_list: Vec<&str> = module.ports.iter().map(|p| p.name.as_str()).collect();
    let _ = writeln!(out, "\nmodule {} ({});", module.name, port_list.join(", "));
    for port in &module.ports {
        let dir = match port.dir {
            PortDir::Input => "input",
            PortDir::Output => "output",
        };
        let _ = writeln!(out, "  {dir} {};", port.name);
    }
    for (i, net) in module.nets.iter().enumerate() {
        // Port nets are implicitly declared by their direction statement.
        let is_port = module.ports.iter().any(|p| p.net.index() == i);
        if !is_port {
            let _ = writeln!(out, "  wire {net};");
        }
    }
    for cell in &module.cells {
        let mut conns = Vec::with_capacity(cell.inputs.len() + 1);
        for (pin, net) in cell.kind.input_pins().iter().zip(&cell.inputs) {
            conns.push(format!(".{pin}({})", module.nets[net.index()]));
        }
        conns.push(format!(
            ".{}({})",
            cell.kind.output_pin(),
            module.nets[cell.output.index()]
        ));
        let _ = writeln!(
            out,
            "  {} {} ({});",
            cell.kind.name(),
            cell.name,
            conns.join(", ")
        );
    }
    for inst in &module.instances {
        let target = design.module(inst.module);
        let conns: Vec<String> = target
            .ports
            .iter()
            .zip(&inst.connections)
            .map(|(port, net)| format!(".{}({})", port.name, module.nets[net.index()]))
            .collect();
        let _ = writeln!(
            out,
            "  {} {} ({});",
            target.name,
            inst.name,
            conns.join(", ")
        );
    }
    out.push_str("endmodule\n");
}

/// Convenience check used by tests: whether `name` collides with a library
/// cell and would be mis-parsed as a primitive.
#[cfg(test)]
fn is_primitive_name(name: &str) -> bool {
    crate::cell::CellKind::from_name(name).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;
    use crate::design::ModuleBuilder;

    #[test]
    fn writes_ports_wires_and_cells() {
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("m");
        let a = mb.port("a", PortDir::Input);
        let y = mb.port("y", PortDir::Output);
        let w = mb.net("w");
        mb.cell("u0", CellKind::Inv, &[a], &[w]).unwrap();
        mb.cell("u1", CellKind::Buf, &[w], &[y]).unwrap();
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();

        let text = write_verilog(&design);
        assert!(text.contains("// top: m"));
        assert!(text.contains("module m (a, y);"));
        assert!(text.contains("input a;"));
        assert!(text.contains("output y;"));
        assert!(text.contains("wire w;"));
        assert!(text.contains("INV u0 (.A(a), .Y(w));"));
        assert!(text.contains("BUF u1 (.A(w), .Y(y));"));
        assert!(text.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn port_nets_are_not_redeclared_as_wires() {
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("m");
        let a = mb.port("a", PortDir::Input);
        let y = mb.port("y", PortDir::Output);
        mb.cell("u0", CellKind::Buf, &[a], &[y]).unwrap();
        design.add_module(mb.finish()).unwrap();
        let text = write_verilog(&design);
        assert!(!text.contains("wire a;"));
        assert!(!text.contains("wire y;"));
    }

    #[test]
    fn instances_use_named_connections() {
        let mut design = Design::new();
        let mut leaf = ModuleBuilder::new("leaf");
        let a = leaf.port("a", PortDir::Input);
        let y = leaf.port("y", PortDir::Output);
        leaf.cell("u0", CellKind::Inv, &[a], &[y]).unwrap();
        let leaf_id = design.add_module(leaf.finish()).unwrap();

        let mut top = ModuleBuilder::new("wrapper");
        let x = top.port("x", PortDir::Input);
        let z = top.port("z", PortDir::Output);
        top.instance("u_leaf", leaf_id, &[x, z]).unwrap();
        design.add_module(top.finish()).unwrap();

        let text = write_verilog(&design);
        assert!(text.contains("leaf u_leaf (.a(x), .y(z));"));
    }

    #[test]
    fn primitive_name_check() {
        assert!(is_primitive_name("NAND2"));
        assert!(!is_primitive_name("my_module"));
    }
}
