//! Stable content hashing for netlists and campaign artifacts.
//!
//! [`FlatNetlist::content_hash`] digests everything an injection campaign
//! can observe about a netlist — cell kinds, connectivity, hierarchical
//! instance names, net names and the primary-input/output lists — into a
//! 128-bit value that is independent of elaboration internals (arena
//! layout, interning order caches, lazy lookup state). Two netlists hash
//! equal exactly when a campaign cannot distinguish them, so the hash can
//! key a content-addressed artifact cache: equal hash ⇒ equal golden
//! traces, records and SER tables for the same scenario and seed.
//!
//! The digest is a 128-bit FNV-1a variant. It is **not** cryptographic —
//! it defends against accidental collisions in a cache, not adversaries.

use crate::flat::{Driver, FlatNetlist, NetId};
use std::fmt;

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// Incremental 128-bit FNV-1a hasher over byte streams.
///
/// Deterministic across platforms and runs (no randomized state), so the
/// digest of the same bytes is stable forever — the property a
/// content-addressed store on disk needs.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u128,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        StableHasher {
            state: FNV128_OFFSET,
        }
    }

    /// Absorbs raw bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Absorbs a length-prefixed string, so `("ab", "c")` and
    /// `("a", "bc")` digest differently.
    pub fn update_str(&mut self, s: &str) {
        self.update_u64(s.len() as u64);
        self.update(s.as_bytes());
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// The 128-bit digest of everything absorbed so far.
    pub fn finish(&self) -> ContentHash {
        ContentHash(self.state)
    }
}

/// A 128-bit stable content digest (see [`StableHasher`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentHash(pub u128);

impl ContentHash {
    /// The digest as 32 lowercase hex digits — filename-safe, so it can
    /// name artifacts in a filesystem store.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl fmt::Debug for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ContentHash({})", self.to_hex())
    }
}

impl FlatNetlist {
    /// Digests the netlist's campaign-observable content: per-cell kind,
    /// output net, input nets and full hierarchical name; per-net full
    /// name and driver; and the primary-input/output lists.
    ///
    /// The hash depends only on this canonical description — not on the
    /// storage layout or the elaboration path that produced it — so
    /// re-elaborating the same design (with any thread count) hashes
    /// equal, while any cell-kind, connection or name mutation changes
    /// the digest.
    pub fn content_hash(&self) -> ContentHash {
        let mut h = StableHasher::new();
        h.update_str("ssresf-netlist-v1");
        h.update_u64(self.num_cells() as u64);
        h.update_u64(self.num_nets() as u64);
        for (id, cell) in self.iter_cells() {
            h.update_u64(u64::from(id.0));
            h.update_str(cell.kind.name());
            h.update_u64(u64::from(cell.output.0));
            h.update_u64(cell.inputs.len() as u64);
            for input in cell.inputs {
                h.update_u64(u64::from(input.0));
            }
            h.update_str(&self.cell_full_name(id));
        }
        for net in (0..self.num_nets() as u32).map(NetId) {
            h.update_str(&self.net_full_name(net));
            match self.net(net).driver {
                Some(Driver::Cell(c)) => {
                    h.update_u64(1);
                    h.update_u64(u64::from(c.0));
                }
                Some(Driver::PrimaryInput) => h.update_u64(2),
                None => h.update_u64(0),
            }
        }
        h.update_u64(self.primary_inputs().len() as u64);
        for &pi in self.primary_inputs() {
            h.update_u64(u64::from(pi.0));
        }
        h.update_u64(self.primary_outputs().len() as u64);
        for &po in self.primary_outputs() {
            h.update_u64(u64::from(po.0));
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_bytes_hash_stably() {
        // Pinned digest: a change here means every on-disk cache key
        // rotates, which must be a deliberate format bump.
        let mut h = StableHasher::new();
        h.update(b"ssresf");
        assert_eq!(h.finish().to_hex(), "6b0557df683c64bf6f500d803aa34f37");
    }

    #[test]
    fn length_prefix_separates_strings() {
        let mut a = StableHasher::new();
        a.update_str("ab");
        a.update_str("c");
        let mut b = StableHasher::new();
        b.update_str("a");
        b.update_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
