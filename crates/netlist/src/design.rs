//! Hierarchical gate-level designs.
//!
//! A [`Design`] holds a set of [`Module`]s. Each module contains single-bit
//! nets, primitive [`Cell`]s referencing the [`CellKind`] library, and
//! [`Instance`]s of other modules. Modules are built with
//! [`ModuleBuilder`], which enforces name uniqueness and pin arity at
//! construction time.

use crate::cell::CellKind;
use crate::error::NetlistError;
use crate::{LocalNetId, ModuleId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Direction of a module port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortDir {
    /// Driven from outside the module.
    Input,
    /// Driven from inside the module.
    Output,
}

/// A single-bit module port bound to a local net.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Port {
    /// Port name (also the name of the bound net).
    pub name: String,
    /// Direction as seen from inside the module.
    pub dir: PortDir,
    /// The local net carrying the port value.
    pub net: LocalNetId,
}

/// A primitive cell instance inside a module.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cell {
    /// Instance name, unique within the module.
    pub name: String,
    /// Library cell kind.
    pub kind: CellKind,
    /// Input nets in the kind's canonical pin order.
    pub inputs: Vec<LocalNetId>,
    /// The net driven by the cell's output pin.
    pub output: LocalNetId,
}

/// An instance of another module.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instance {
    /// Instance name, unique within the module.
    pub name: String,
    /// The instantiated module.
    pub module: ModuleId,
    /// Parent nets bound to the module's ports, in port order.
    pub connections: Vec<LocalNetId>,
}

/// A module definition: ports, nets, primitive cells and submodule instances.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Module {
    /// Module name, unique within the design.
    pub name: String,
    /// Ports in declaration order.
    pub ports: Vec<Port>,
    /// Net names, indexed by [`LocalNetId`].
    pub nets: Vec<String>,
    /// Primitive cells.
    pub cells: Vec<Cell>,
    /// Submodule instances.
    pub instances: Vec<Instance>,
}

impl Module {
    /// Number of primitive cells directly in this module (not descendants).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Looks up a port index by name.
    pub fn port_index(&self, name: &str) -> Option<usize> {
        self.ports.iter().position(|p| p.name == name)
    }
}

/// Incremental builder for a [`Module`].
///
/// # Example
///
/// ```
/// use ssresf_netlist::{CellKind, ModuleBuilder, PortDir};
///
/// # fn main() -> Result<(), ssresf_netlist::NetlistError> {
/// let mut mb = ModuleBuilder::new("inverter");
/// let a = mb.port("a", PortDir::Input);
/// let y = mb.port("y", PortDir::Output);
/// mb.cell("u0", CellKind::Inv, &[a], &[y])?;
/// let module = mb.finish();
/// assert_eq!(module.cell_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ModuleBuilder {
    module: Module,
    net_names: HashMap<String, LocalNetId>,
    item_names: HashMap<String, ()>,
    anon_counter: u32,
}

impl ModuleBuilder {
    /// Starts building a module called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ModuleBuilder {
            module: Module {
                name: name.into(),
                ports: Vec::new(),
                nets: Vec::new(),
                cells: Vec::new(),
                instances: Vec::new(),
            },
            net_names: HashMap::new(),
            item_names: HashMap::new(),
            anon_counter: 0,
        }
    }

    /// Declares a port, creating (or reusing) the net of the same name.
    pub fn port(&mut self, name: impl Into<String>, dir: PortDir) -> LocalNetId {
        let name = name.into();
        let net = self.net(name.clone());
        self.module.ports.push(Port { name, dir, net });
        net
    }

    /// Returns the net called `name`, creating it if necessary.
    pub fn net(&mut self, name: impl Into<String>) -> LocalNetId {
        let name = name.into();
        if let Some(&id) = self.net_names.get(&name) {
            return id;
        }
        let id = LocalNetId(self.module.nets.len() as u32);
        self.net_names.insert(name.clone(), id);
        self.module.nets.push(name);
        id
    }

    /// Creates a fresh uniquely named net with the given prefix.
    pub fn fresh_net(&mut self, prefix: &str) -> LocalNetId {
        loop {
            let candidate = format!("{prefix}_{}", self.anon_counter);
            self.anon_counter += 1;
            if !self.net_names.contains_key(&candidate) {
                return self.net(candidate);
            }
        }
    }

    /// Adds a primitive cell.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::PinArity`] when the connection counts don't
    /// match `kind`, and [`NetlistError::DuplicateName`] for a reused
    /// instance name.
    pub fn cell(
        &mut self,
        name: impl Into<String>,
        kind: CellKind,
        inputs: &[LocalNetId],
        outputs: &[LocalNetId],
    ) -> Result<(), NetlistError> {
        let name = name.into();
        if inputs.len() != kind.num_inputs() || outputs.len() != 1 {
            return Err(NetlistError::PinArity {
                cell: name,
                kind: kind.name(),
                expected: (kind.num_inputs(), 1),
                got: (inputs.len(), outputs.len()),
            });
        }
        if self.item_names.insert(name.clone(), ()).is_some() {
            return Err(NetlistError::DuplicateName(name));
        }
        self.module.cells.push(Cell {
            name,
            kind,
            inputs: inputs.to_vec(),
            output: outputs[0],
        });
        Ok(())
    }

    /// Adds a primitive cell with an auto-generated unique name.
    pub fn auto_cell(
        &mut self,
        prefix: &str,
        kind: CellKind,
        inputs: &[LocalNetId],
        output: LocalNetId,
    ) -> Result<(), NetlistError> {
        let name = loop {
            let candidate = format!("{prefix}_{}", self.anon_counter);
            self.anon_counter += 1;
            if !self.item_names.contains_key(&candidate) {
                break candidate;
            }
        };
        self.cell(name, kind, inputs, &[output])
    }

    /// Adds an instance of `module`, whose port list the caller must match
    /// positionally with `connections`.
    ///
    /// Arity against the actual module definition is validated by
    /// [`Design::add_module`], since the builder does not have access to
    /// other modules.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] for a reused instance name.
    pub fn instance(
        &mut self,
        name: impl Into<String>,
        module: ModuleId,
        connections: &[LocalNetId],
    ) -> Result<(), NetlistError> {
        let name = name.into();
        if self.item_names.insert(name.clone(), ()).is_some() {
            return Err(NetlistError::DuplicateName(name));
        }
        self.module.instances.push(Instance {
            name,
            module,
            connections: connections.to_vec(),
        });
        Ok(())
    }

    /// Name of the module being built.
    pub fn name(&self) -> &str {
        &self.module.name
    }

    /// Finishes and returns the module.
    pub fn finish(self) -> Module {
        self.module
    }
}

/// A complete hierarchical design: a set of modules plus a designated top.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Design {
    modules: Vec<Module>,
    #[serde(skip)]
    by_name: HashMap<String, ModuleId>,
    top: Option<ModuleId>,
}

impl Design {
    /// Creates an empty design.
    pub fn new() -> Self {
        Design::default()
    }

    /// Adds a module, validating its instance connections against modules
    /// already present (hierarchies must therefore be added bottom-up).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if a module of the same name
    /// exists, [`NetlistError::UnknownModule`] / [`NetlistError::PortMismatch`]
    /// for bad instance references.
    pub fn add_module(&mut self, module: Module) -> Result<ModuleId, NetlistError> {
        if self.by_name.contains_key(&module.name) {
            return Err(NetlistError::DuplicateName(module.name));
        }
        for inst in &module.instances {
            let target = self
                .modules
                .get(inst.module.index())
                .ok_or_else(|| NetlistError::UnknownModule(format!("#{}", inst.module.0)))?;
            if target.ports.len() != inst.connections.len() {
                return Err(NetlistError::PortMismatch {
                    instance: inst.name.clone(),
                    module: target.name.clone(),
                    ports: target.ports.len(),
                    connections: inst.connections.len(),
                });
            }
        }
        let id = ModuleId(self.modules.len() as u32);
        self.by_name.insert(module.name.clone(), id);
        self.modules.push(module);
        Ok(id)
    }

    /// Declares `id` as the top module.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownModule`] for an id not in this design.
    pub fn set_top(&mut self, id: ModuleId) -> Result<(), NetlistError> {
        if id.index() >= self.modules.len() {
            return Err(NetlistError::UnknownModule(format!("#{}", id.0)));
        }
        self.top = Some(id);
        Ok(())
    }

    /// The top module id, if set.
    pub fn top(&self) -> Option<ModuleId> {
        self.top
    }

    /// Resolves a module id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this design.
    pub fn module(&self, id: ModuleId) -> &Module {
        &self.modules[id.index()]
    }

    /// Looks a module up by name.
    pub fn module_by_name(&self, name: &str) -> Option<ModuleId> {
        self.by_name.get(name).copied()
    }

    /// All modules, in insertion (bottom-up) order.
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// Rebuilds the name lookup table (needed after deserialization).
    pub fn rebuild_lookup(&mut self) {
        self.by_name = self
            .modules
            .iter()
            .enumerate()
            .map(|(i, m)| (m.name.clone(), ModuleId(i as u32)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inverter_module() -> Module {
        let mut mb = ModuleBuilder::new("inverter");
        let a = mb.port("a", PortDir::Input);
        let y = mb.port("y", PortDir::Output);
        mb.cell("u0", CellKind::Inv, &[a], &[y]).unwrap();
        mb.finish()
    }

    #[test]
    fn builder_reuses_named_nets() {
        let mut mb = ModuleBuilder::new("m");
        let a = mb.net("w");
        let b = mb.net("w");
        assert_eq!(a, b);
        let c = mb.net("x");
        assert_ne!(a, c);
    }

    #[test]
    fn fresh_net_never_collides() {
        let mut mb = ModuleBuilder::new("m");
        mb.net("t_0");
        let n = mb.fresh_net("t");
        let module = mb.finish();
        assert_ne!(module.nets[n.index()], "t_0");
    }

    #[test]
    fn cell_arity_is_checked() {
        let mut mb = ModuleBuilder::new("m");
        let a = mb.net("a");
        let y = mb.net("y");
        let err = mb.cell("u0", CellKind::Nand2, &[a], &[y]).unwrap_err();
        assert!(matches!(err, NetlistError::PinArity { .. }));
    }

    #[test]
    fn duplicate_cell_name_rejected() {
        let mut mb = ModuleBuilder::new("m");
        let a = mb.net("a");
        let y = mb.net("y");
        let z = mb.net("z");
        mb.cell("u0", CellKind::Inv, &[a], &[y]).unwrap();
        let err = mb.cell("u0", CellKind::Inv, &[a], &[z]).unwrap_err();
        assert_eq!(err, NetlistError::DuplicateName("u0".into()));
    }

    #[test]
    fn design_rejects_duplicate_module_names() {
        let mut design = Design::new();
        design.add_module(inverter_module()).unwrap();
        let err = design.add_module(inverter_module()).unwrap_err();
        assert_eq!(err, NetlistError::DuplicateName("inverter".into()));
    }

    #[test]
    fn design_rejects_port_mismatch() {
        let mut design = Design::new();
        let inv = design.add_module(inverter_module()).unwrap();
        let mut mb = ModuleBuilder::new("top");
        let a = mb.port("a", PortDir::Input);
        mb.instance("u_inv", inv, &[a]).unwrap();
        let err = design.add_module(mb.finish()).unwrap_err();
        assert!(matches!(err, NetlistError::PortMismatch { .. }));
    }

    #[test]
    fn lookup_by_name() {
        let mut design = Design::new();
        let id = design.add_module(inverter_module()).unwrap();
        assert_eq!(design.module_by_name("inverter"), Some(id));
        assert_eq!(design.module_by_name("missing"), None);
        assert_eq!(design.module(id).name, "inverter");
    }

    #[test]
    fn set_top_validates_id() {
        let mut design = Design::new();
        assert!(design.set_top(ModuleId(0)).is_err());
        let id = design.add_module(inverter_module()).unwrap();
        design.set_top(id).unwrap();
        assert_eq!(design.top(), Some(id));
    }
}
