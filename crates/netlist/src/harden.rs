//! Radiation-hardening netlist transformations (ECO-style edits on flat
//! netlists).
//!
//! The point of sensitivity analysis is to harden what matters: this module
//! applies **triple modular redundancy** to selected cells — the cell is
//! triplicated and a majority voter (`maj(a,b,c) = ab | bc | ca`) drives the
//! original output net, so an upset in any single replica is masked. The
//! SSRESF pipeline's predicted sensitive-node list is the natural input
//! (see `ssresf::hardening`).

use crate::cell::CellKind;
use crate::error::NetlistError;
use crate::flat::{CellId, Driver, FlatNetlist, NetId};
use crate::path::HierPath;
use serde::{Deserialize, Serialize};

/// Summary of a hardening transformation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardeningReport {
    /// Cells that were triplicated.
    pub hardened: Vec<CellId>,
    /// Primitive cells added (replicas + voter gates).
    pub added_cells: usize,
    /// Transistor count before hardening.
    pub transistors_before: u64,
    /// Transistor count after hardening.
    pub transistors_after: u64,
}

impl HardeningReport {
    /// Relative area overhead (`after / before − 1`).
    pub fn area_overhead(&self) -> f64 {
        if self.transistors_before == 0 {
            0.0
        } else {
            self.transistors_after as f64 / self.transistors_before as f64 - 1.0
        }
    }
}

impl FlatNetlist {
    /// Adds a fresh undriven net. The name is taken verbatim as a root-level
    /// leaf, so [`FlatNetlist::net_full_name`] returns it unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the 32-bit net id space is exhausted (use elaboration-time
    /// construction, which reports [`NetlistError::TooLarge`], for netlists
    /// anywhere near that size).
    pub fn add_net(&mut self, name: String) -> NetId {
        let root = self.paths_mut().intern(HierPath::root());
        let leaf = self.intern_name(&name).expect("net name arena exhausted");
        self.push_net_parts(root, leaf)
            .expect("net id space exhausted")
    }

    /// Adds a primitive cell, wiring its pins into the connectivity.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::PinArity`] on arity mismatch and
    /// [`NetlistError::MultipleDrivers`] when `output` is already driven.
    pub fn add_cell(
        &mut self,
        name: String,
        path: crate::path::PathId,
        kind: CellKind,
        inputs: &[NetId],
        output: NetId,
    ) -> Result<CellId, NetlistError> {
        if inputs.len() != kind.num_inputs() {
            return Err(NetlistError::PinArity {
                cell: name,
                kind: kind.name(),
                expected: (kind.num_inputs(), 1),
                got: (inputs.len(), 1),
            });
        }
        if self.net(output).driver.is_some() {
            return Err(NetlistError::MultipleDrivers(self.net_full_name(output)));
        }
        let leaf = self.intern_name(&name)?;
        let id = self.push_cell_parts(leaf, path, kind, inputs, output)?;
        for (pin, &net) in inputs.iter().enumerate() {
            self.append_load(net, (id, pin as u8));
        }
        self.set_driver(output, Some(Driver::Cell(id)));
        Ok(id)
    }

    /// Moves the output of `cell` from its current net to `new_output`
    /// (which must be undriven). The old net is left driverless; existing
    /// loads stay attached to it.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::MultipleDrivers`] when `new_output` already
    /// has a driver.
    pub fn retarget_output(
        &mut self,
        cell: CellId,
        new_output: NetId,
    ) -> Result<NetId, NetlistError> {
        if self.net(new_output).driver.is_some() {
            return Err(NetlistError::MultipleDrivers(
                self.net_full_name(new_output),
            ));
        }
        let old = self.cell(cell).output;
        self.set_driver(old, None);
        self.set_driver(new_output, Some(Driver::Cell(cell)));
        self.set_cell_output(cell, new_output);
        Ok(old)
    }

    /// Applies TMR to every cell in `targets`: the cell is triplicated and
    /// a 2-of-3 majority voter takes over its original output net, so all
    /// downstream loads see the voted value.
    ///
    /// Tie cells cannot be hardened (their output is constant anyway) and
    /// are skipped; every other kind, sequential or combinational, is
    /// supported.
    ///
    /// # Errors
    ///
    /// Propagates edit failures; on success the netlist's name lookup is
    /// rebuilt.
    pub fn tmr_harden(&mut self, targets: &[CellId]) -> Result<HardeningReport, NetlistError> {
        let before: u64 = self
            .cells()
            .iter()
            .map(|c| u64::from(c.kind.transistor_count()))
            .sum();
        let cells_before = self.cells().len();
        let mut hardened = Vec::new();

        for &target in targets {
            let kind = self.cell(target).kind;
            if matches!(kind, CellKind::Tie0 | CellKind::Tie1) {
                continue;
            }
            let base = self.cell_full_name(target).replace('.', "_");
            let path = self.cell(target).path;
            let inputs = self.cell(target).inputs.to_vec();
            let original_out = self.cell(target).output;

            // Replica outputs.
            let qa = self.add_net(format!("{base}_tmr_qa"));
            let qb = self.add_net(format!("{base}_tmr_qb"));
            let qc = self.add_net(format!("{base}_tmr_qc"));
            self.retarget_output(target, qa)?;
            self.add_cell(format!("{base}_tmr_b"), path, kind, &inputs, qb)?;
            self.add_cell(format!("{base}_tmr_c"), path, kind, &inputs, qc)?;

            // Majority voter driving the original net.
            let ab = self.add_net(format!("{base}_tmr_ab"));
            let bc = self.add_net(format!("{base}_tmr_bc"));
            let ca = self.add_net(format!("{base}_tmr_ca"));
            self.add_cell(
                format!("{base}_tmr_and_ab"),
                path,
                CellKind::And2,
                &[qa, qb],
                ab,
            )?;
            self.add_cell(
                format!("{base}_tmr_and_bc"),
                path,
                CellKind::And2,
                &[qb, qc],
                bc,
            )?;
            self.add_cell(
                format!("{base}_tmr_and_ca"),
                path,
                CellKind::And2,
                &[qc, qa],
                ca,
            )?;
            self.add_cell(
                format!("{base}_tmr_vote"),
                path,
                CellKind::Or3,
                &[ab, bc, ca],
                original_out,
            )?;
            hardened.push(target);
        }

        self.rebuild_lookup();
        let after: u64 = self
            .cells()
            .iter()
            .map(|c| u64::from(c.kind.transistor_count()))
            .sum();
        Ok(HardeningReport {
            hardened,
            added_cells: self.cells().len() - cells_before,
            transistors_before: before,
            transistors_after: after,
        })
    }

    /// Swaps every cell in `targets` that has a radiation-hardened drop-in
    /// replacement (see [`hardened_kind`]) for that replacement, in place.
    ///
    /// The swap preserves cell ids, pin wiring, and simulation behavior —
    /// hardened kinds are behavior-identical — so an injection schedule
    /// addressed by `CellId` stays valid on the transformed netlist. The
    /// radiation model sees the difference: hardened kinds carry
    /// [`RadiationClass::RadHardCell`](crate::cell::RadiationClass) with its
    /// high-LET-threshold cross-section. Cells without a hardened variant
    /// (latches, enable flops, combinational logic) are skipped.
    pub fn ff_harden(&mut self, targets: &[CellId]) -> HardeningReport {
        let before: u64 = self
            .cells()
            .iter()
            .map(|c| u64::from(c.kind.transistor_count()))
            .sum();
        let mut hardened = Vec::new();
        for &target in targets {
            if let Some(hard) = hardened_kind(self.cell(target).kind) {
                self.set_cell_kind(target, hard);
                hardened.push(target);
            }
        }
        let after: u64 = self
            .cells()
            .iter()
            .map(|c| u64::from(c.kind.transistor_count()))
            .sum();
        HardeningReport {
            hardened,
            added_cells: 0,
            transistors_before: before,
            transistors_after: after,
        }
    }
}

/// The pin-compatible radiation-hardened replacement for `kind`, if the
/// library has one: plain and resettable flip-flops map to their DICE
/// variants, and SRAM/DRAM bits map to the hardened storage bit.
pub fn hardened_kind(kind: CellKind) -> Option<CellKind> {
    match kind {
        CellKind::Dff => Some(CellKind::HardDff),
        CellKind::Dffr => Some(CellKind::HardDffr),
        CellKind::SramBit | CellKind::DramBit => Some(CellKind::RadHardBit),
        _ => None,
    }
}

/// Picks the sequential members of `targets` (voters mask SEUs; hardening
/// combinational cells is also possible but guards only against SETs).
pub fn sequential_only(netlist: &FlatNetlist, targets: &[CellId]) -> Vec<CellId> {
    targets
        .iter()
        .copied()
        .filter(|&c| netlist.cell(c).kind.is_sequential())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{Design, ModuleBuilder, PortDir};

    fn toggler() -> FlatNetlist {
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("t");
        let clk = mb.port("clk", PortDir::Input);
        let rst_n = mb.port("rst_n", PortDir::Input);
        let q = mb.port("q", PortDir::Output);
        let nq = mb.net("nq");
        mb.cell("u_inv", CellKind::Inv, &[q], &[nq]).unwrap();
        mb.cell("u_ff", CellKind::Dffr, &[clk, nq, rst_n], &[q])
            .unwrap();
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        design.flatten().unwrap()
    }

    #[test]
    fn tmr_adds_replicas_and_voter() {
        let mut flat = toggler();
        let ff = flat.cell_by_name("u_ff").unwrap();
        let report = flat.tmr_harden(&[ff]).unwrap();
        assert_eq!(report.hardened, vec![ff]);
        // 2 replicas + 3 ANDs + 1 OR3.
        assert_eq!(report.added_cells, 6);
        assert!(report.area_overhead() > 0.5);
        // The original output net is now voter-driven.
        let q = flat.net_by_name("q").unwrap();
        let driver = match flat.net(q).driver {
            Some(Driver::Cell(c)) => c,
            other => panic!("{other:?}"),
        };
        assert_eq!(flat.cell(driver).kind, CellKind::Or3);
        // Still a valid, levelizable netlist.
        flat.levelize().unwrap();
    }

    #[test]
    fn tmr_preserves_golden_behavior() {
        // Checked end-to-end in the sim-level integration tests; here we
        // validate connectivity invariants: every net with loads has a
        // driver and arities hold.
        let mut flat = toggler();
        let ff = flat.cell_by_name("u_ff").unwrap();
        let inv = flat.cell_by_name("u_inv").unwrap();
        flat.tmr_harden(&[ff, inv]).unwrap();
        for (i, net) in flat.nets().iter().enumerate() {
            if !net.loads.is_empty() {
                assert!(
                    net.driver.is_some() || flat.primary_inputs().contains(&NetId(i as u32)),
                    "undriven loaded net {}",
                    flat.net_full_name(NetId(i as u32))
                );
            }
            for &(cell, pin) in net.loads {
                assert_eq!(flat.cell(cell).inputs[pin as usize], NetId(i as u32));
            }
        }
        for (id, cell) in flat.iter_cells() {
            assert_eq!(cell.inputs.len(), cell.kind.num_inputs());
            assert_eq!(flat.net(cell.output).driver, Some(Driver::Cell(id)));
        }
    }

    #[test]
    fn tie_cells_are_skipped() {
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("t");
        let y = mb.port("y", PortDir::Output);
        mb.cell("u_tie", CellKind::Tie1, &[], &[y]).unwrap();
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        let mut flat = design.flatten().unwrap();
        let tie = flat.cell_by_name("u_tie").unwrap();
        let report = flat.tmr_harden(&[tie]).unwrap();
        assert!(report.hardened.is_empty());
        assert_eq!(report.added_cells, 0);
    }

    #[test]
    fn ff_harden_swaps_kinds_in_place() {
        let mut flat = toggler();
        let ff = flat.cell_by_name("u_ff").unwrap();
        let inv = flat.cell_by_name("u_inv").unwrap();
        let cells_before = flat.cells().len();
        let report = flat.ff_harden(&[ff, inv]);
        // Only the flop has a hardened variant; the inverter is skipped.
        assert_eq!(report.hardened, vec![ff]);
        assert_eq!(report.added_cells, 0);
        assert_eq!(flat.cells().len(), cells_before);
        assert_eq!(flat.cell(ff).kind, CellKind::HardDffr);
        assert_eq!(flat.cell(inv).kind, CellKind::Inv);
        // Dffr 24T -> HardDffr 48T.
        assert_eq!(
            report.transistors_after - report.transistors_before,
            u64::from(CellKind::HardDffr.transistor_count())
                - u64::from(CellKind::Dffr.transistor_count())
        );
        flat.levelize().unwrap();
    }

    #[test]
    fn hardened_kind_is_pin_compatible() {
        for &kind in crate::cell::ALL_CELL_KINDS {
            if let Some(hard) = hardened_kind(kind) {
                assert_eq!(kind.input_pins(), hard.input_pins(), "{kind}");
                assert!(hard.transistor_count() > kind.transistor_count(), "{kind}");
                assert_eq!(
                    hard.radiation_class(),
                    crate::cell::RadiationClass::RadHardCell
                );
            }
        }
    }

    #[test]
    fn sequential_only_filters() {
        let flat = toggler();
        let all: Vec<CellId> = flat.iter_cells().map(|(id, _)| id).collect();
        let seq = sequential_only(&flat, &all);
        assert_eq!(seq.len(), 1);
        assert!(flat.cell(seq[0]).kind.is_sequential());
    }

    #[test]
    fn retarget_output_rejects_driven_net() {
        let mut flat = toggler();
        let ff = flat.cell_by_name("u_ff").unwrap();
        let nq = flat.net_by_name("nq").unwrap();
        assert!(matches!(
            flat.retarget_output(ff, nq),
            Err(NetlistError::MultipleDrivers(_))
        ));
    }
}
