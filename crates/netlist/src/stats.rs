//! Summary statistics over flat netlists.

use crate::cell::{CellKind, RadiationClass, ALL_CELL_KINDS};
use crate::features::ModuleClass;
use crate::flat::FlatNetlist;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Aggregated statistics of a [`FlatNetlist`], useful for reports and for
/// sanity-checking generated SoCs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetlistStats {
    /// Total primitive cells.
    pub cells: usize,
    /// Total nets.
    pub nets: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Combinational cell count.
    pub combinational: usize,
    /// Sequential cell count (flip-flops, latches, memory bits).
    pub sequential: usize,
    /// Memory bit-cell count.
    pub memory_bits: usize,
    /// Total transistor estimate.
    pub transistors: u64,
    /// Cell count per kind name.
    pub by_kind: BTreeMap<String, usize>,
    /// Cell count per radiation class name.
    pub by_radiation_class: BTreeMap<String, usize>,
    /// Cell count per inferred module class name.
    pub by_module_class: BTreeMap<String, usize>,
    /// Average fanout over driven nets.
    pub avg_fanout: f64,
    /// Maximum fanout.
    pub max_fanout: usize,
}

impl NetlistStats {
    /// Computes statistics for `netlist`.
    pub fn compute(netlist: &FlatNetlist) -> Self {
        let mut by_kind: BTreeMap<String, usize> = BTreeMap::new();
        let mut by_radiation_class: BTreeMap<String, usize> = BTreeMap::new();
        let mut by_module_class: BTreeMap<String, usize> = BTreeMap::new();
        let mut combinational = 0;
        let mut sequential = 0;
        let mut memory_bits = 0;
        let mut transistors: u64 = 0;

        for (_, cell) in netlist.iter_cells() {
            *by_kind.entry(cell.kind.name().to_owned()).or_default() += 1;
            let rad = radiation_class_name(cell.kind.radiation_class());
            *by_radiation_class.entry(rad.to_owned()).or_default() += 1;
            let class = ModuleClass::infer(netlist.paths().resolve(cell.path).segments());
            *by_module_class.entry(class.name().to_owned()).or_default() += 1;
            if cell.kind.is_sequential() {
                sequential += 1;
            } else {
                combinational += 1;
            }
            if cell.kind.is_memory_bit() {
                memory_bits += 1;
            }
            transistors += u64::from(cell.kind.transistor_count());
        }

        let mut fanout_sum = 0usize;
        let mut fanout_count = 0usize;
        let mut max_fanout = 0usize;
        for net in netlist.nets() {
            if net.driver.is_some() {
                fanout_sum += net.loads.len();
                fanout_count += 1;
                max_fanout = max_fanout.max(net.loads.len());
            }
        }

        NetlistStats {
            cells: netlist.cells().len(),
            nets: netlist.nets().len(),
            inputs: netlist.primary_inputs().len(),
            outputs: netlist.primary_outputs().len(),
            combinational,
            sequential,
            memory_bits,
            transistors,
            by_kind,
            by_radiation_class,
            by_module_class,
            avg_fanout: if fanout_count == 0 {
                0.0
            } else {
                fanout_sum as f64 / fanout_count as f64
            },
            max_fanout,
        }
    }

    /// Count of cells of one specific kind.
    pub fn kind_count(&self, kind: CellKind) -> usize {
        self.by_kind.get(kind.name()).copied().unwrap_or(0)
    }
}

fn radiation_class_name(class: RadiationClass) -> &'static str {
    match class {
        RadiationClass::Combinational => "combinational",
        RadiationClass::FlipFlop => "flipflop",
        RadiationClass::SramCell => "sram",
        RadiationClass::DramCell => "dram",
        RadiationClass::RadHardCell => "radhard",
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cells: {} ({} comb, {} seq, {} memory bits)",
            self.cells, self.combinational, self.sequential, self.memory_bits
        )?;
        writeln!(
            f,
            "nets: {} (in {}, out {}), avg fanout {:.2}, max fanout {}",
            self.nets, self.inputs, self.outputs, self.avg_fanout, self.max_fanout
        )?;
        writeln!(f, "transistors: ~{}", self.transistors)?;
        for (name, count) in &self.by_module_class {
            writeln!(f, "  module class {name}: {count}")?;
        }
        Ok(())
    }
}

/// Ensures the stable kind iteration order used by reports covers all kinds.
pub fn kind_catalog() -> &'static [CellKind] {
    ALL_CELL_KINDS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{Design, ModuleBuilder, PortDir};

    fn small_netlist() -> FlatNetlist {
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("top");
        let clk = mb.port("clk", PortDir::Input);
        let a = mb.port("a", PortDir::Input);
        let y = mb.port("y", PortDir::Output);
        let na = mb.net("na");
        mb.cell("u_inv", CellKind::Inv, &[a], &[na]).unwrap();
        mb.cell("u_ff", CellKind::Dff, &[clk, na], &[y]).unwrap();
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        design.flatten().unwrap()
    }

    #[test]
    fn compute_counts_kinds_and_classes() {
        let stats = NetlistStats::compute(&small_netlist());
        assert_eq!(stats.cells, 2);
        assert_eq!(stats.combinational, 1);
        assert_eq!(stats.sequential, 1);
        assert_eq!(stats.memory_bits, 0);
        assert_eq!(stats.kind_count(CellKind::Inv), 1);
        assert_eq!(stats.kind_count(CellKind::Dff), 1);
        assert_eq!(stats.kind_count(CellKind::Nand2), 0);
        assert_eq!(stats.by_radiation_class.get("flipflop"), Some(&1));
    }

    #[test]
    fn fanout_statistics() {
        let stats = NetlistStats::compute(&small_netlist());
        // na feeds the FF; y feeds nothing; clk/a are primary-input driven.
        assert!(stats.avg_fanout > 0.0);
        assert!(stats.max_fanout >= 1);
    }

    #[test]
    fn display_is_nonempty() {
        let stats = NetlistStats::compute(&small_netlist());
        assert!(stats.to_string().contains("cells: 2"));
    }
}
