//! Gate-level netlist substrate for the SSRESF radiation-effects framework.
//!
//! This crate provides everything SSRESF needs to represent and manipulate
//! gate-level circuits:
//!
//! - a [`CellKind`] standard-cell library (combinational gates, flip-flops,
//!   latches and memory bit cells) with per-cell radiation classes,
//! - a hierarchical [`Design`] made of [`Module`]s, primitive [`Cell`]s and
//!   submodule [`Instance`]s, built through [`ModuleBuilder`],
//! - elaboration into a [`FlatNetlist`] that records, for every cell, its
//!   hierarchical instance path — the raw material for the paper's
//!   Algorithm-1 clustering distance,
//! - a structural-Verilog [writer](verilog::write_verilog) and
//!   [parser](verilog::parse_verilog) for interchange,
//! - [levelization](flat::FlatNetlist::levelize) and structural
//!   [feature extraction](features) feeding the SVM classifier.
//!
//! # Example
//!
//! ```
//! use ssresf_netlist::{CellKind, Design, ModuleBuilder, PortDir};
//!
//! # fn main() -> Result<(), ssresf_netlist::NetlistError> {
//! let mut design = Design::new();
//! let mut mb = ModuleBuilder::new("toggler");
//! let clk = mb.port("clk", PortDir::Input);
//! let q = mb.port("q", PortDir::Output);
//! let nq = mb.net("nq");
//! mb.cell("u_inv", CellKind::Inv, &[q], &[nq])?;
//! mb.cell("u_ff", CellKind::Dff, &[clk, nq], &[q])?;
//! let top = design.add_module(mb.finish())?;
//! design.set_top(top)?;
//! let flat = design.flatten()?;
//! assert_eq!(flat.cells().len(), 2);
//! # Ok(())
//! # }
//! ```

pub mod cell;
pub mod design;
pub mod error;
pub mod features;
pub mod flat;
pub mod generate;
pub mod harden;
pub mod hash;
pub mod path;
pub mod stats;
pub mod verilog;

pub use cell::{CellKind, RadiationClass};
pub use design::{Cell, Design, Instance, Module, ModuleBuilder, Port, PortDir};
pub use error::NetlistError;
pub use features::{
    CellFeatures, FeatureExtractor, ModuleClass, DEPTH_OBS_SATURATED, STRUCTURAL_FEATURE_NAMES,
};
pub use flat::{CellId, CellView, Driver, FlatNetlist, NetId, NetView};
pub use generate::{CircuitSpec, GateSpec, GENERATOR_KINDS};
pub use harden::{hardened_kind, HardeningReport};
pub use hash::{ContentHash, StableHasher};
pub use path::{HierPath, LayerSignatures, PathId, PathInterner, ABSENT_LAYER};
pub use stats::NetlistStats;

/// Identifier of a module within a [`Design`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct ModuleId(pub(crate) u32);

impl ModuleId {
    /// Raw index of the module inside its design.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a net local to a [`Module`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct LocalNetId(pub(crate) u32);

impl LocalNetId {
    /// Raw index of the net inside its module.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
