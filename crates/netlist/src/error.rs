//! Error type shared by all netlist operations.

use std::fmt;

/// Errors produced while building, elaborating or parsing netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A cell was given the wrong number of input or output connections.
    PinArity {
        /// Cell instance name.
        cell: String,
        /// Cell kind name.
        kind: &'static str,
        /// Expected (inputs, outputs).
        expected: (usize, usize),
        /// Provided (inputs, outputs).
        got: (usize, usize),
    },
    /// A name (module, cell, instance or net) was declared twice in one scope.
    DuplicateName(String),
    /// A referenced module does not exist in the design.
    UnknownModule(String),
    /// An instance connection list does not match the module port list.
    PortMismatch {
        /// Instance name.
        instance: String,
        /// Target module name.
        module: String,
        /// Number of ports on the module.
        ports: usize,
        /// Number of connections supplied.
        connections: usize,
    },
    /// The design has no top module set.
    NoTop,
    /// A net has more than one driver after elaboration.
    MultipleDrivers(String),
    /// A net that is read has no driver and is not a primary input.
    Undriven(String),
    /// The combinational portion of the netlist contains a cycle.
    CombinationalLoop(String),
    /// The design's module instantiation graph is recursive.
    RecursiveHierarchy(String),
    /// The design exceeds the 32-bit id space of the flat netlist.
    TooLarge {
        /// Which id column overflowed (e.g. `"cells"`, `"nets"`).
        what: &'static str,
    },
    /// Structural Verilog could not be parsed.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::PinArity {
                cell,
                kind,
                expected,
                got,
            } => write!(
                f,
                "cell `{cell}` of kind {kind} expects {}/{} input/output pins, got {}/{}",
                expected.0, expected.1, got.0, got.1
            ),
            NetlistError::DuplicateName(name) => write!(f, "duplicate name `{name}`"),
            NetlistError::UnknownModule(name) => write!(f, "unknown module `{name}`"),
            NetlistError::PortMismatch {
                instance,
                module,
                ports,
                connections,
            } => write!(
                f,
                "instance `{instance}` of `{module}` supplies {connections} connections for {ports} ports"
            ),
            NetlistError::NoTop => write!(f, "design has no top module"),
            NetlistError::MultipleDrivers(net) => write!(f, "net `{net}` has multiple drivers"),
            NetlistError::Undriven(net) => write!(f, "net `{net}` is read but never driven"),
            NetlistError::CombinationalLoop(net) => {
                write!(f, "combinational loop through net `{net}`")
            }
            NetlistError::RecursiveHierarchy(module) => {
                write!(f, "recursive instantiation of module `{module}`")
            }
            NetlistError::TooLarge { what } => {
                write!(f, "netlist too large: 32-bit {what} id space exhausted")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = NetlistError::DuplicateName("u1".into());
        let s = err.to_string();
        assert!(s.starts_with("duplicate"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
