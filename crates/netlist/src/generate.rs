//! Spec-driven random-circuit construction — the generator hook the
//! conformance subsystem builds on.
//!
//! A [`CircuitSpec`] is plain data: a list of gates whose operands are
//! indices into a growing operand pool, a bank of resettable flip-flops
//! providing registered feedback, and a handful of buffered outputs. Because
//! operand indices are resolved modulo the pool size, *any* mutation of the
//! spec — removing gates, dropping flip-flops, truncating the list — still
//! yields a structurally valid, combinational-loop-free circuit. That is the
//! property proptest-style shrinking needs: every shrink candidate can be
//! built and simulated without re-validation.
//!
//! The crate deliberately contains no randomness; callers (the conformance
//! fuzzer, benches) decide how specs are sampled and keep the spec as the
//! reproducible artifact.

use crate::cell::CellKind;
use crate::design::{Design, ModuleBuilder, PortDir};
use crate::error::NetlistError;
use crate::flat::FlatNetlist;

/// Gate kinds the generator draws from (every combinational kind with at
/// most three inputs, no constant drivers).
pub const GENERATOR_KINDS: &[CellKind] = &[
    CellKind::Inv,
    CellKind::Buf,
    CellKind::And2,
    CellKind::Or2,
    CellKind::Nand2,
    CellKind::Nor2,
    CellKind::Xor2,
    CellKind::Xnor2,
    CellKind::And3,
    CellKind::Or3,
    CellKind::Nand3,
    CellKind::Nor3,
    CellKind::Mux2,
    CellKind::Aoi21,
    CellKind::Oai21,
];

/// One combinational gate of a [`CircuitSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateSpec {
    /// Gate function; must be combinational.
    pub kind: CellKind,
    /// Operand pool indices, resolved modulo the pool size at build time.
    /// Exactly `kind.num_inputs()` entries are consumed (missing entries
    /// default to 0, extras are ignored), so mutating `kind` keeps the spec
    /// buildable.
    pub operands: Vec<u16>,
}

/// A deterministic description of a random-but-valid sequential circuit.
///
/// The operand pool is built in this order: the `inputs` primary inputs
/// (`in_0..`), then one `q_i` net per flip-flop, then each gate's output
/// `w_g` as it is declared. Gates may therefore reference primary inputs,
/// any flip-flop output (registered feedback — combinational loops are
/// impossible by construction) and every *earlier* gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitSpec {
    /// Module name (also the flattened design name).
    pub name: String,
    /// Number of primary data inputs (at least 1 is enforced at build).
    pub inputs: usize,
    /// The combinational cloud.
    pub gates: Vec<GateSpec>,
    /// One flip-flop per entry; the value is the pool index of its `D`
    /// operand, resolved modulo the *full* pool (so flip-flops can register
    /// any gate output). At least one flip-flop is always built so the
    /// clock survives flattening.
    pub ff_d: Vec<u16>,
    /// Number of buffered primary outputs tapped from the pool tail
    /// (clamped to the pool size; at least 1).
    pub outputs: usize,
}

impl CircuitSpec {
    /// Number of cells the built netlist will contain.
    pub fn cell_count(&self) -> usize {
        self.gates.len() + self.ff_d.len().max(1) + self.outputs.max(1)
    }

    /// Builds the hierarchical single-module design for this spec.
    ///
    /// The module follows the SSRESF conventions (`clk` clock, active-low
    /// `rst_n`), so the result can be driven by `Dut::from_conventions` and
    /// `Testbench` alike.
    pub fn build_design(&self) -> Design {
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new(self.name.clone());
        let clk = mb.port("clk", PortDir::Input);
        let rst_n = mb.port("rst_n", PortDir::Input);

        let inputs = self.inputs.max(1);
        let mut pool = Vec::with_capacity(inputs + self.ff_d.len() + self.gates.len());
        for i in 0..inputs {
            pool.push(mb.port(format!("in_{i}"), PortDir::Input));
        }
        let ffs = self.ff_d.len().max(1);
        let ff_q: Vec<_> = (0..ffs).map(|i| mb.net(format!("q_{i}"))).collect();
        pool.extend(ff_q.iter().copied());

        for (g, gate) in self.gates.iter().enumerate() {
            debug_assert!(gate.kind.is_combinational(), "generator gates are comb");
            let operands: Vec<_> = (0..gate.kind.num_inputs())
                .map(|p| {
                    let idx = gate.operands.get(p).copied().unwrap_or(0) as usize;
                    pool[idx % pool.len()]
                })
                .collect();
            let y = mb.net(format!("w_{g}"));
            mb.cell(format!("u_g{g}"), gate.kind, &operands, &[y])
                .expect("generator gate arity is correct by construction");
            pool.push(y);
        }

        for (i, &q) in ff_q.iter().enumerate() {
            let d_idx = self.ff_d.get(i).copied().unwrap_or(0) as usize;
            let d = pool[d_idx % pool.len()];
            mb.cell(format!("u_ff{i}"), CellKind::Dffr, &[clk, d, rst_n], &[q])
                .expect("flip-flop arity is correct by construction");
        }

        let outputs = self.outputs.clamp(1, pool.len());
        for i in 0..outputs {
            let src = pool[pool.len() - 1 - i];
            let out = mb.port(format!("out_{i}"), PortDir::Output);
            mb.cell(format!("u_ob{i}"), CellKind::Buf, &[src], &[out])
                .expect("buffer arity is correct by construction");
        }

        let id = design
            .add_module(mb.finish())
            .expect("generated module names are unique");
        design.set_top(id).expect("top module was just added");
        design
    }

    /// Builds and flattens the circuit.
    ///
    /// # Errors
    ///
    /// Propagates elaboration failures ([`NetlistError`]); specs produced by
    /// honest mutation of a valid spec always flatten.
    pub fn flatten(&self) -> Result<FlatNetlist, NetlistError> {
        self.build_design().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> CircuitSpec {
        CircuitSpec {
            name: "gen_sample".into(),
            inputs: 3,
            gates: vec![
                GateSpec {
                    kind: CellKind::Xor2,
                    operands: vec![0, 1],
                },
                GateSpec {
                    kind: CellKind::Mux2,
                    operands: vec![2, 3, 4],
                },
                GateSpec {
                    kind: CellKind::Nand2,
                    operands: vec![5, 0],
                },
            ],
            ff_d: vec![6, 2],
            outputs: 2,
        }
    }

    #[test]
    fn spec_builds_a_flattenable_circuit() {
        let spec = sample_spec();
        let flat = spec.flatten().unwrap();
        assert!(flat.net_by_name("clk").is_some());
        assert!(flat.net_by_name("rst_n").is_some());
        assert_eq!(flat.cells().len(), spec.cell_count());
        // No combinational loops by construction.
        assert!(flat.levelize().is_ok());
    }

    #[test]
    fn any_truncation_still_builds() {
        let spec = sample_spec();
        for keep_gates in 0..=spec.gates.len() {
            for keep_ffs in 0..=spec.ff_d.len() {
                let shrunk = CircuitSpec {
                    gates: spec.gates[..keep_gates].to_vec(),
                    ff_d: spec.ff_d[..keep_ffs].to_vec(),
                    ..spec.clone()
                };
                let flat = shrunk.flatten().unwrap();
                assert!(flat.levelize().is_ok());
            }
        }
    }

    #[test]
    fn missing_operands_default_instead_of_panicking() {
        let spec = CircuitSpec {
            name: "gen_defaults".into(),
            inputs: 1,
            gates: vec![GateSpec {
                kind: CellKind::Aoi21,
                operands: vec![],
            }],
            ff_d: vec![],
            outputs: 9,
        };
        let flat = spec.flatten().unwrap();
        // One gate, the mandatory flip-flop, and outputs clamped to pool.
        assert!(flat.levelize().is_ok());
        assert_eq!(flat.primary_outputs().len(), 3);
    }

    #[test]
    fn generator_kinds_are_all_combinational() {
        for &kind in GENERATOR_KINDS {
            assert!(kind.is_combinational());
            assert!(kind.num_inputs() <= 3);
        }
    }
}
