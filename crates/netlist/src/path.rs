//! Hierarchical instance paths and their interner.
//!
//! Every cell in a [`FlatNetlist`](crate::FlatNetlist) carries the path of
//! module instances from the top module down to the module containing the
//! cell. The SSRESF clustering distance (paper Eq. 1) compares these paths
//! layer by layer, so paths are stored as interned segment sequences that
//! are cheap to compare.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Interned identifier of a hierarchical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PathId(pub(crate) u32);

impl PathId {
    /// Raw index into the owning [`PathInterner`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A hierarchical instance path: the sequence of instance names from the top
/// module (exclusive) down to the containing module.
///
/// The top-level module itself is represented by the empty path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct HierPath {
    segments: Vec<String>,
}

impl HierPath {
    /// The empty path (a cell directly inside the top module).
    pub fn root() -> Self {
        HierPath::default()
    }

    /// Builds a path from instance-name segments.
    pub fn from_segments<I, S>(segments: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        HierPath {
            segments: segments.into_iter().map(Into::into).collect(),
        }
    }

    /// Segments of the path, outermost first.
    pub fn segments(&self) -> &[String] {
        &self.segments
    }

    /// Hierarchy depth (number of instance levels below the top module).
    pub fn depth(&self) -> usize {
        self.segments.len()
    }

    /// Returns a new path with `segment` appended.
    pub fn child(&self, segment: &str) -> Self {
        let mut segments = self.segments.clone();
        segments.push(segment.to_owned());
        HierPath { segments }
    }

    /// The segment at 1-based layer `layer`, or `None` past the path's depth.
    ///
    /// Layer 1 is the instance directly inside the top module. This is the
    /// `Module(A, Li)` accessor used by the Eq.-1 clustering distance.
    pub fn layer(&self, layer: usize) -> Option<&str> {
        if layer == 0 {
            return None;
        }
        self.segments.get(layer - 1).map(String::as_str)
    }

    /// Joins the segments with `.`, the conventional hierarchical separator.
    pub fn dotted(&self) -> String {
        self.segments.join(".")
    }

    /// Joins the path and a leaf name with `.`; just the leaf for root paths.
    pub fn join(&self, leaf: &str) -> String {
        if self.segments.is_empty() {
            leaf.to_owned()
        } else {
            format!("{}.{leaf}", self.dotted())
        }
    }
}

impl std::fmt::Display for HierPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.dotted())
    }
}

/// Deduplicating store of [`HierPath`]s.
///
/// Flattening a netlist produces one path per module instance but thousands
/// of cells per instance; interning lets every cell store a 4-byte [`PathId`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PathInterner {
    paths: Vec<HierPath>,
    #[serde(skip)]
    lookup: HashMap<HierPath, PathId>,
}

impl PathInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        PathInterner::default()
    }

    /// Interns `path`, returning its stable identifier.
    pub fn intern(&mut self, path: HierPath) -> PathId {
        if let Some(&id) = self.lookup.get(&path) {
            return id;
        }
        let id = PathId(u32::try_from(self.paths.len()).expect("more than u32::MAX paths"));
        self.lookup.insert(path.clone(), id);
        self.paths.push(path);
        id
    }

    /// Looks up an already-interned path without interning it.
    pub fn find(&self, path: &HierPath) -> Option<PathId> {
        self.lookup.get(path).copied()
    }

    /// Resolves an identifier back to its path.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this interner.
    pub fn resolve(&self, id: PathId) -> &HierPath {
        &self.paths[id.index()]
    }

    /// Number of distinct paths interned.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether no path has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Iterates over `(id, path)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (PathId, &HierPath)> {
        self.paths
            .iter()
            .enumerate()
            .map(|(i, p)| (PathId(i as u32), p))
    }

    /// Rebuilds the reverse-lookup table (needed after deserialization).
    pub fn rebuild_lookup(&mut self) {
        self.lookup = self
            .paths
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), PathId(i as u32)))
            .collect();
    }

    /// Encodes every interned path as a fixed-width layer signature of
    /// interned segment ids (see [`LayerSignatures`]).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn layer_signatures(&self, depth: usize) -> LayerSignatures {
        assert!(depth > 0, "signature depth must be at least 1");
        let mut segment_ids: HashMap<&str, u32> = HashMap::new();
        let mut sigs = Vec::with_capacity(self.paths.len() * depth);
        for path in &self.paths {
            for layer in 1..=depth {
                let id = match path.layer(layer) {
                    Some(segment) => {
                        let next = segment_ids.len() as u32;
                        assert!(next < ABSENT_LAYER, "more than u32::MAX - 1 segment names");
                        *segment_ids.entry(segment).or_insert(next)
                    }
                    None => ABSENT_LAYER,
                };
                sigs.push(id);
            }
        }
        LayerSignatures { depth, sigs }
    }
}

/// Signature id marking a layer past the end of a path.
///
/// Real segment ids are interned densely from 0, so `u32::MAX` can never
/// collide with one.
pub const ABSENT_LAYER: u32 = u32::MAX;

/// Fixed-width integer encodings of every path in a [`PathInterner`].
///
/// Path `p`'s signature is `depth` interned segment ids: slot `l` (0-based)
/// holds a global id for `p.layer(l + 1)`, or [`ABSENT_LAYER`] when the path
/// is shallower. Segment ids are interned across the whole interner, so for
/// any two paths `a`, `b` and any slot `l < depth`:
///
/// `sig(a)[l] == sig(b)[l]  ⟺  a.layer(l + 1) == b.layer(l + 1)`
///
/// This turns the paper's Eq.-1 layer-by-layer string comparison into a few
/// integer compares, and makes the signature itself a dedup key: two paths
/// share a signature exactly when they agree on the first `depth` layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerSignatures {
    depth: usize,
    sigs: Vec<u32>,
}

impl LayerSignatures {
    /// Signature width (the clustering `LN`).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of encoded paths.
    pub fn len(&self) -> usize {
        self.sigs.len() / self.depth
    }

    /// Whether no path was encoded.
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    /// The signature slice for one path.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from the interner this was built from.
    pub fn of(&self, id: PathId) -> &[u32] {
        let start = id.index() * self.depth;
        &self.sigs[start..start + self.depth]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_path_is_empty_and_displays_empty() {
        let root = HierPath::root();
        assert_eq!(root.depth(), 0);
        assert_eq!(root.to_string(), "");
        assert_eq!(root.join("u1"), "u1");
    }

    #[test]
    fn child_appends_segment() {
        let p = HierPath::root().child("cpu").child("alu");
        assert_eq!(p.depth(), 2);
        assert_eq!(p.dotted(), "cpu.alu");
        assert_eq!(p.join("u_nand"), "cpu.alu.u_nand");
    }

    #[test]
    fn layer_is_one_based() {
        let p = HierPath::from_segments(["cpu", "alu", "adder"]);
        assert_eq!(p.layer(0), None);
        assert_eq!(p.layer(1), Some("cpu"));
        assert_eq!(p.layer(3), Some("adder"));
        assert_eq!(p.layer(4), None);
    }

    #[test]
    fn interner_deduplicates() {
        let mut interner = PathInterner::new();
        let a = interner.intern(HierPath::from_segments(["cpu"]));
        let b = interner.intern(HierPath::from_segments(["bus"]));
        let a2 = interner.intern(HierPath::from_segments(["cpu"]));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.resolve(a).dotted(), "cpu");
    }

    #[test]
    fn signature_equality_matches_layer_comparison() {
        let mut interner = PathInterner::new();
        let paths = [
            HierPath::root(),
            HierPath::from_segments(["cpu"]),
            HierPath::from_segments(["cpu", "alu"]),
            HierPath::from_segments(["cpu", "alu", "adder"]),
            HierPath::from_segments(["cpu", "lsu"]),
            HierPath::from_segments(["bus", "alu"]),
        ];
        let ids: Vec<PathId> = paths.iter().map(|p| interner.intern(p.clone())).collect();
        for depth in [1usize, 2, 3, 5] {
            let sigs = interner.layer_signatures(depth);
            assert_eq!(sigs.depth(), depth);
            assert_eq!(sigs.len(), paths.len());
            for (a, &ia) in paths.iter().zip(&ids) {
                for (b, &ib) in paths.iter().zip(&ids) {
                    for slot in 0..depth {
                        assert_eq!(
                            sigs.of(ia)[slot] == sigs.of(ib)[slot],
                            a.layer(slot + 1) == b.layer(slot + 1),
                            "depth {depth}, slot {slot}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn signatures_mark_absent_layers() {
        let mut interner = PathInterner::new();
        let shallow = interner.intern(HierPath::from_segments(["cpu"]));
        let deep = interner.intern(HierPath::from_segments(["cpu", "alu"]));
        let sigs = interner.layer_signatures(3);
        assert_eq!(sigs.of(shallow)[0], sigs.of(deep)[0]);
        assert_eq!(sigs.of(shallow)[1], ABSENT_LAYER);
        assert_ne!(sigs.of(deep)[1], ABSENT_LAYER);
        assert_eq!(sigs.of(shallow)[2], ABSENT_LAYER);
        assert_eq!(sigs.of(deep)[2], ABSENT_LAYER);
    }

    #[test]
    #[should_panic(expected = "signature depth")]
    fn zero_depth_signatures_panic() {
        PathInterner::new().layer_signatures(0);
    }

    #[test]
    fn rebuild_lookup_restores_dedup_after_clone_without_map() {
        let mut interner = PathInterner::new();
        interner.intern(HierPath::from_segments(["cpu"]));
        let mut copy = PathInterner {
            paths: interner.paths.clone(),
            lookup: HashMap::new(),
        };
        copy.rebuild_lookup();
        let id = copy.intern(HierPath::from_segments(["cpu"]));
        assert_eq!(copy.len(), 1);
        assert_eq!(copy.resolve(id).dotted(), "cpu");
    }
}
