//! Elaboration of hierarchical designs into flat netlists.
//!
//! A [`FlatNetlist`] is the form consumed by the simulator, the clustering
//! algorithm and the feature extractor: a flat array of primitive cells, each
//! tagged with its hierarchical instance path, plus fully resolved nets with
//! driver/load connectivity.
//!
//! # Storage layout
//!
//! The netlist is stored struct-of-arrays so million-cell SoCs fit in a few
//! contiguous allocations instead of one heap object per cell:
//!
//! - cell kind/output/path/name are parallel `u32`-sized columns;
//! - input pins live in one shared CSR pool (`cell_pin_start` offsets into
//!   `pin_pool`), replacing a per-cell `Vec<NetId>`;
//! - net loads live in a second CSR-style pool with per-net `(start, len)`
//!   spans, which [`FlatNetlist::add_cell`] grows by relocating a net's span
//!   to the pool tail (load order is preserved exactly);
//! - leaf names are interned into a [`NameArena`] (one string buffer plus
//!   offsets), and net names are stored as `(PathId, leaf)` pairs instead of
//!   joined hierarchical strings;
//! - the name-lookup tables behind [`FlatNetlist::cell_by_name`] and
//!   [`FlatNetlist::net_by_name`] are built lazily on first query and keyed
//!   by `(PathId, leaf)`, so campaigns that address cells by id never pay
//!   for them.
//!
//! Cell and net ids stay dense `u32` indices; minting past the 32-bit id
//! space is a [`NetlistError::TooLarge`] error instead of a silent wrap.

use crate::cell::CellKind;
use crate::design::{Design, PortDir};
use crate::error::NetlistError;
use crate::path::{HierPath, PathId, PathInterner};
use crate::ModuleId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Identifier of a cell in a [`FlatNetlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellId(pub u32);

impl CellId {
    /// Raw index of the cell.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a net in a [`FlatNetlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetId(pub u32);

impl NetId {
    /// Raw index of the net.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Driver {
    /// The output pin of a cell.
    Cell(CellId),
    /// A primary input of the flattened design.
    PrimaryInput,
}

/// In-array driver encoding: a plain cell index, or one of two sentinels.
const NO_DRIVER: u32 = u32::MAX;
const PI_DRIVER: u32 = u32::MAX - 1;

fn encode_driver(driver: Option<Driver>) -> u32 {
    match driver {
        None => NO_DRIVER,
        Some(Driver::PrimaryInput) => PI_DRIVER,
        Some(Driver::Cell(cell)) => cell.0,
    }
}

fn decode_driver(raw: u32) -> Option<Driver> {
    match raw {
        NO_DRIVER => None,
        PI_DRIVER => Some(Driver::PrimaryInput),
        cell => Some(Driver::Cell(CellId(cell))),
    }
}

/// Largest id value that can be minted; the two values above it are
/// reserved for the driver-encoding sentinels.
const MAX_ID: usize = (u32::MAX - 2) as usize;

/// Mints the id for the next element of a column of current length `len`,
/// or fails with [`NetlistError::TooLarge`] once the 32-bit id space (minus
/// the reserved sentinels) is exhausted. Every cell/net/name id in a
/// [`FlatNetlist`] passes through this guard, so ids can never silently
/// wrap and alias.
pub(crate) fn checked_id(len: usize, what: &'static str) -> Result<u32, NetlistError> {
    if len > MAX_ID {
        return Err(NetlistError::TooLarge { what });
    }
    Ok(len as u32)
}

/// Interned identifier of a leaf name in a [`NameArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NameId(u32);

/// Append-only arena of leaf-name strings: one shared byte buffer plus an
/// end offset per name. Unlike [`PathInterner`] it does not deduplicate —
/// leaf names are mostly unique — but elaboration interns each module's
/// name set once, so repeated instances of a module share entries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NameArena {
    data: String,
    ends: Vec<u32>,
}

impl NameArena {
    /// Appends `name`, returning its id.
    pub(crate) fn intern(&mut self, name: &str) -> Result<NameId, NetlistError> {
        let id = checked_id(self.ends.len(), "leaf names")?;
        let end = self.data.len() + name.len();
        if end > MAX_ID {
            return Err(NetlistError::TooLarge {
                what: "leaf-name bytes",
            });
        }
        self.data.push_str(name);
        self.ends.push(end as u32);
        Ok(NameId(id))
    }

    /// Resolves an id back to its string.
    pub fn resolve(&self, id: NameId) -> &str {
        let i = id.0 as usize;
        let start = if i == 0 { 0 } else { self.ends[i - 1] as usize };
        &self.data[start..self.ends[i] as usize]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }
}

/// Borrowed view of one cell of a [`FlatNetlist`].
///
/// Views are cheap `Copy` handles assembled on access from the underlying
/// columns; they borrow the netlist, not a per-cell heap object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellView<'a> {
    /// Leaf instance name (unique within its parent module instance).
    pub name: &'a str,
    /// Hierarchical instance path of the containing module.
    pub path: PathId,
    /// Library cell kind.
    pub kind: CellKind,
    /// Input nets in canonical pin order.
    pub inputs: &'a [NetId],
    /// Net driven by the output pin.
    pub output: NetId,
}

/// Borrowed view of one net of a [`FlatNetlist`].
///
/// Net names are stored as `(PathId, leaf)` pairs; use
/// [`FlatNetlist::net_full_name`] to materialize the joined hierarchical
/// name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetView<'a> {
    /// The unique driver, if any.
    pub driver: Option<Driver>,
    /// Cells reading this net, as `(cell, input-pin index)` pairs.
    pub loads: &'a [(CellId, u8)],
}

/// Indexable, iterable view over all cells (see [`FlatNetlist::cells`]).
#[derive(Clone, Copy)]
pub struct CellsView<'a> {
    nl: &'a FlatNetlist,
}

impl<'a> CellsView<'a> {
    /// Number of cells.
    pub fn len(self) -> usize {
        self.nl.num_cells()
    }

    /// Whether the netlist has no cells.
    pub fn is_empty(self) -> bool {
        self.nl.num_cells() == 0
    }

    /// Iterates over cell views in id order.
    pub fn iter(self) -> CellIter<'a> {
        CellIter {
            nl: self.nl,
            next: 0,
        }
    }
}

impl<'a> IntoIterator for CellsView<'a> {
    type Item = CellView<'a>;
    type IntoIter = CellIter<'a>;
    fn into_iter(self) -> CellIter<'a> {
        self.iter()
    }
}

/// Iterator over [`CellView`]s in id order.
pub struct CellIter<'a> {
    nl: &'a FlatNetlist,
    next: u32,
}

impl<'a> Iterator for CellIter<'a> {
    type Item = CellView<'a>;
    fn next(&mut self) -> Option<CellView<'a>> {
        if (self.next as usize) < self.nl.num_cells() {
            let view = self.nl.cell(CellId(self.next));
            self.next += 1;
            Some(view)
        } else {
            None
        }
    }
}

/// Indexable, iterable view over all nets (see [`FlatNetlist::nets`]).
#[derive(Clone, Copy)]
pub struct NetsView<'a> {
    nl: &'a FlatNetlist,
}

impl<'a> NetsView<'a> {
    /// Number of nets.
    pub fn len(self) -> usize {
        self.nl.num_nets()
    }

    /// Whether the netlist has no nets.
    pub fn is_empty(self) -> bool {
        self.nl.num_nets() == 0
    }

    /// Iterates over net views in id order.
    pub fn iter(self) -> NetIter<'a> {
        NetIter {
            nl: self.nl,
            next: 0,
        }
    }
}

impl<'a> IntoIterator for NetsView<'a> {
    type Item = NetView<'a>;
    type IntoIter = NetIter<'a>;
    fn into_iter(self) -> NetIter<'a> {
        self.iter()
    }
}

/// Iterator over [`NetView`]s in id order.
pub struct NetIter<'a> {
    nl: &'a FlatNetlist,
    next: u32,
}

impl<'a> Iterator for NetIter<'a> {
    type Item = NetView<'a>;
    fn next(&mut self) -> Option<NetView<'a>> {
        if (self.next as usize) < self.nl.num_nets() {
            let view = self.nl.net(NetId(self.next));
            self.next += 1;
            Some(view)
        } else {
            None
        }
    }
}

/// Result of levelizing the combinational portion of a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Levelization {
    /// Topological order of all combinational cells (sources first).
    pub order: Vec<CellId>,
    /// Per-cell combinational depth. Sequential cells and tie cells have
    /// depth 0; a combinational cell's depth is one more than the maximum
    /// depth among its input drivers.
    pub cell_depth: Vec<u32>,
    /// Maximum combinational depth in the design.
    pub max_depth: u32,
}

type LazyLookup<T> = OnceLock<HashMap<PathId, HashMap<Box<str>, T>>>;

/// A flattened gate-level netlist (struct-of-arrays storage; see the
/// module docs for the layout).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FlatNetlist {
    /// Name of the top module this netlist was flattened from.
    pub top_name: String,
    paths: PathInterner,
    names: NameArena,
    // Cell columns (parallel, indexed by CellId).
    cell_name: Vec<NameId>,
    cell_path: Vec<PathId>,
    cell_kind: Vec<CellKind>,
    cell_output: Vec<NetId>,
    /// CSR offsets into `pin_pool`; length `cells + 1` (leading 0).
    cell_pin_start: Vec<u32>,
    pin_pool: Vec<NetId>,
    // Net columns (parallel, indexed by NetId).
    net_name: Vec<NameId>,
    net_path: Vec<PathId>,
    net_driver: Vec<u32>,
    net_load_start: Vec<u32>,
    net_load_len: Vec<u32>,
    load_pool: Vec<(CellId, u8)>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
    #[serde(skip)]
    cell_lookup: LazyLookup<CellId>,
    #[serde(skip)]
    net_lookup: LazyLookup<NetId>,
}

impl FlatNetlist {
    /// All cells.
    pub fn cells(&self) -> CellsView<'_> {
        CellsView { nl: self }
    }

    /// All nets.
    pub fn nets(&self) -> NetsView<'_> {
        NetsView { nl: self }
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cell_kind.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.net_driver.len()
    }

    /// Resolves a cell id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn cell(&self, id: CellId) -> CellView<'_> {
        let i = id.index();
        CellView {
            name: self.names.resolve(self.cell_name[i]),
            path: self.cell_path[i],
            kind: self.cell_kind[i],
            inputs: self.cell_inputs(i),
            output: self.cell_output[i],
        }
    }

    #[inline]
    fn cell_inputs(&self, i: usize) -> &[NetId] {
        &self.pin_pool[self.cell_pin_start[i] as usize..self.cell_pin_start[i + 1] as usize]
    }

    /// Resolves a net id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn net(&self, id: NetId) -> NetView<'_> {
        let i = id.index();
        let start = self.net_load_start[i] as usize;
        NetView {
            driver: decode_driver(self.net_driver[i]),
            loads: &self.load_pool[start..start + self.net_load_len[i] as usize],
        }
    }

    /// Primary inputs (top-module input ports), in port order.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// Primary outputs (top-module output ports), in port order.
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.primary_outputs
    }

    /// The interner resolving cell [`PathId`]s.
    pub fn paths(&self) -> &PathInterner {
        &self.paths
    }

    /// The arena resolving cell and net leaf names.
    pub fn names(&self) -> &NameArena {
        &self.names
    }

    pub(crate) fn paths_mut(&mut self) -> &mut PathInterner {
        &mut self.paths
    }

    /// Full hierarchical name of a cell.
    pub fn cell_full_name(&self, id: CellId) -> String {
        let i = id.index();
        self.paths
            .resolve(self.cell_path[i])
            .join(self.names.resolve(self.cell_name[i]))
    }

    /// Full hierarchical name of a net.
    pub fn net_full_name(&self, id: NetId) -> String {
        let i = id.index();
        self.paths
            .resolve(self.net_path[i])
            .join(self.names.resolve(self.net_name[i]))
    }

    /// Looks a cell up by full hierarchical name.
    ///
    /// The lookup table is built on first query (keyed `(PathId, leaf)`, so
    /// path prefixes are never duplicated) and invalidated by mutation.
    pub fn cell_by_name(&self, name: &str) -> Option<CellId> {
        let map = self.cell_lookup.get_or_init(|| {
            let mut map: HashMap<PathId, HashMap<Box<str>, CellId>> = HashMap::new();
            for i in 0..self.num_cells() {
                map.entry(self.cell_path[i]).or_default().insert(
                    self.names.resolve(self.cell_name[i]).into(),
                    CellId(i as u32),
                );
            }
            map
        });
        self.resolve_qualified(name, map)
    }

    /// Looks a net up by full hierarchical name.
    ///
    /// Built lazily like [`FlatNetlist::cell_by_name`].
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        let map = self.net_lookup.get_or_init(|| {
            let mut map: HashMap<PathId, HashMap<Box<str>, NetId>> = HashMap::new();
            for i in 0..self.num_nets() {
                map.entry(self.net_path[i])
                    .or_default()
                    .insert(self.names.resolve(self.net_name[i]).into(), NetId(i as u32));
            }
            map
        });
        self.resolve_qualified(name, map)
    }

    /// Resolves a dotted hierarchical name against a `(PathId, leaf)` map by
    /// trying every path/leaf split, longest path prefix first (leaf names
    /// normally contain no dots, so the first hit is the unique answer).
    fn resolve_qualified<T: Copy>(
        &self,
        name: &str,
        map: &HashMap<PathId, HashMap<Box<str>, T>>,
    ) -> Option<T> {
        let try_one = |path: &HierPath, leaf: &str| -> Option<T> {
            let path_id = self.paths.find(path)?;
            map.get(&path_id).and_then(|m| m.get(leaf)).copied()
        };
        for (i, _) in name.rmatch_indices('.') {
            let path = HierPath::from_segments(name[..i].split('.'));
            if let Some(v) = try_one(&path, &name[i + 1..]) {
                return Some(v);
            }
        }
        try_one(&HierPath::root(), name)
    }

    /// Number of cells whose output fans out to `net`'s loads.
    pub fn fanout(&self, net: NetId) -> usize {
        self.net_load_len[net.index()] as usize
    }

    /// Iterates over `(id, cell)` pairs.
    pub fn iter_cells(&self) -> impl Iterator<Item = (CellId, CellView<'_>)> {
        (0..self.num_cells() as u32).map(|i| (CellId(i), self.cell(CellId(i))))
    }

    /// Rebuilds derived lookup state (needed after deserialization).
    ///
    /// The lazy name tables are dropped (they rebuild on next query); the
    /// path interner's reverse map is rebuilt eagerly.
    pub fn rebuild_lookup(&mut self) {
        self.paths.rebuild_lookup();
        self.invalidate_lookup();
    }

    pub(crate) fn invalidate_lookup(&mut self) {
        self.cell_lookup = OnceLock::new();
        self.net_lookup = OnceLock::new();
    }

    /// Appends a net stored as `(path, leaf)`.
    pub(crate) fn push_net_parts(
        &mut self,
        path: PathId,
        name: NameId,
    ) -> Result<NetId, NetlistError> {
        let id = checked_id(self.num_nets(), "nets")?;
        debug_assert!(self.load_pool.len() <= MAX_ID);
        self.net_name.push(name);
        self.net_path.push(path);
        self.net_driver.push(NO_DRIVER);
        self.net_load_start.push(self.load_pool.len() as u32);
        self.net_load_len.push(0);
        self.invalidate_lookup();
        Ok(NetId(id))
    }

    /// Appends a cell's columns (connectivity — loads, driver — is wired by
    /// the caller).
    pub(crate) fn push_cell_parts(
        &mut self,
        name: NameId,
        path: PathId,
        kind: CellKind,
        inputs: &[NetId],
        output: NetId,
    ) -> Result<CellId, NetlistError> {
        let id = checked_id(self.num_cells(), "cells")?;
        if self.pin_pool.len() + inputs.len() > MAX_ID {
            return Err(NetlistError::TooLarge { what: "input pins" });
        }
        if self.cell_pin_start.is_empty() {
            self.cell_pin_start.push(0);
        }
        self.cell_name.push(name);
        self.cell_path.push(path);
        self.cell_kind.push(kind);
        self.cell_output.push(output);
        self.pin_pool.extend_from_slice(inputs);
        self.cell_pin_start.push(self.pin_pool.len() as u32);
        self.invalidate_lookup();
        Ok(CellId(id))
    }

    /// Interns a leaf name.
    pub(crate) fn intern_name(&mut self, name: &str) -> Result<NameId, NetlistError> {
        self.names.intern(name)
    }

    pub(crate) fn raw_driver(&self, net: NetId) -> Option<Driver> {
        decode_driver(self.net_driver[net.index()])
    }

    pub(crate) fn set_driver(&mut self, net: NetId, driver: Option<Driver>) {
        self.net_driver[net.index()] = encode_driver(driver);
    }

    pub(crate) fn set_cell_kind(&mut self, cell: CellId, kind: CellKind) {
        self.cell_kind[cell.index()] = kind;
    }

    pub(crate) fn set_cell_output(&mut self, cell: CellId, output: NetId) {
        self.cell_output[cell.index()] = output;
    }

    /// Appends one load to a net's span. When the span is not at the pool
    /// tail it is relocated there first, preserving entry order, so load
    /// slices stay contiguous under ECO-style edits; the hole it leaves is
    /// dead pool space (reclaimed only by re-elaboration, which ECO batches
    /// never need).
    pub(crate) fn append_load(&mut self, net: NetId, entry: (CellId, u8)) {
        let i = net.index();
        let start = self.net_load_start[i] as usize;
        let len = self.net_load_len[i] as usize;
        assert!(self.load_pool.len() < MAX_ID, "load pool exhausted");
        if start + len != self.load_pool.len() {
            let pool_end = self.load_pool.len();
            for k in 0..len {
                let moved = self.load_pool[start + k];
                self.load_pool.push(moved);
            }
            self.net_load_start[i] = pool_end as u32;
        }
        self.load_pool.push(entry);
        self.net_load_len[i] = (len + 1) as u32;
    }

    /// Builds the load CSR in one counting pass over the pin pool. Per-net
    /// load order is `(cell id, pin)` ascending — exactly the order in
    /// which elaboration wires cells up.
    fn build_loads(&mut self) {
        let nets = self.num_nets();
        let mut counts = vec![0u32; nets];
        for net in &self.pin_pool {
            counts[net.index()] += 1;
        }
        let mut start = vec![0u32; nets];
        let mut acc = 0u32;
        for (slot, &count) in start.iter_mut().zip(&counts) {
            *slot = acc;
            acc += count;
        }
        let mut fill = start.clone();
        let mut pool = vec![(CellId(0), 0u8); self.pin_pool.len()];
        for c in 0..self.num_cells() {
            for (pin, &net) in self.cell_inputs(c).iter().enumerate() {
                let slot = fill[net.index()];
                fill[net.index()] += 1;
                pool[slot as usize] = (CellId(c as u32), pin as u8);
            }
        }
        self.net_load_start = start;
        self.net_load_len = counts;
        self.load_pool = pool;
    }

    /// Levelizes the combinational portion of the netlist.
    ///
    /// Sources are primary inputs, tie cells and sequential-cell outputs.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalLoop`] if combinational cells
    /// form a cycle.
    pub fn levelize(&self) -> Result<Levelization, NetlistError> {
        let n = self.num_cells();
        let mut pending: Vec<u32> = vec![0; n];
        let mut order = Vec::new();
        let mut ready = Vec::new();
        let mut cell_depth = vec![0u32; n];

        for (i, slot) in pending.iter_mut().enumerate() {
            if self.cell_kind[i].is_sequential() {
                // Sequential cells are sources; they never wait on inputs here.
                continue;
            }
            let mut count = 0;
            for &input in self.cell_inputs(i) {
                if let Some(Driver::Cell(driver)) = decode_driver(self.net_driver[input.index()]) {
                    if self.cell_kind[driver.index()].is_combinational() {
                        count += 1;
                    }
                }
            }
            *slot = count;
            if count == 0 {
                ready.push(CellId(i as u32));
            }
        }

        let total_comb = self
            .cell_kind
            .iter()
            .filter(|k| k.is_combinational())
            .count();

        let mut max_depth = 0;
        while let Some(id) = ready.pop() {
            order.push(id);
            let mut depth = 0;
            for &input in self.cell_inputs(id.index()) {
                if let Some(Driver::Cell(driver)) = decode_driver(self.net_driver[input.index()]) {
                    if self.cell_kind[driver.index()].is_combinational() {
                        depth = depth.max(cell_depth[driver.index()] + 1);
                    }
                }
            }
            cell_depth[id.index()] = depth;
            max_depth = max_depth.max(depth);
            let out = self.cell_output[id.index()];
            let start = self.net_load_start[out.index()] as usize;
            let len = self.net_load_len[out.index()] as usize;
            for k in start..start + len {
                let (load, _pin) = self.load_pool[k];
                if self.cell_kind[load.index()].is_combinational() {
                    pending[load.index()] -= 1;
                    if pending[load.index()] == 0 {
                        ready.push(load);
                    }
                }
            }
        }

        if order.len() != total_comb {
            // Find a cell stuck in the cycle for the error message.
            let stuck = (0..n)
                .find(|&i| self.cell_kind[i].is_combinational() && pending[i] > 0)
                .map(|i| self.net_full_name(self.cell_output[i]))
                .unwrap_or_default();
            return Err(NetlistError::CombinationalLoop(stuck));
        }

        Ok(Levelization {
            order,
            cell_depth,
            max_depth,
        })
    }
}

/// Per-module interned leaf names, shared across that module's instances.
#[derive(Default)]
struct ModuleNames {
    cells: Vec<NameId>,
    nets: Vec<NameId>,
}

fn module_names(
    design: &Design,
    module_id: ModuleId,
    flat: &mut FlatNetlist,
    cache: &mut HashMap<ModuleId, ModuleNames>,
) -> Result<(), NetlistError> {
    if cache.contains_key(&module_id) {
        return Ok(());
    }
    let module = design.module(module_id);
    let mut names = ModuleNames::default();
    for cell in &module.cells {
        names.cells.push(flat.intern_name(&cell.name)?);
    }
    for net in &module.nets {
        names.nets.push(flat.intern_name(net)?);
    }
    cache.insert(module_id, names);
    Ok(())
}

impl Design {
    /// Flattens the design starting from its top module.
    ///
    /// Every module instance is expanded recursively; submodule port nets are
    /// merged with the parent nets they connect to. Cell and net names are
    /// prefixed with their dotted instance path.
    ///
    /// # Errors
    ///
    /// - [`NetlistError::NoTop`] when no top module is set.
    /// - [`NetlistError::RecursiveHierarchy`] on instantiation cycles.
    /// - [`NetlistError::MultipleDrivers`] / [`NetlistError::Undriven`] when
    ///   connectivity is inconsistent after merging.
    /// - [`NetlistError::TooLarge`] when the design exceeds the 32-bit
    ///   cell/net id space.
    pub fn flatten(&self) -> Result<FlatNetlist, NetlistError> {
        let top = self.top().ok_or(NetlistError::NoTop)?;
        let mut flat = FlatNetlist {
            top_name: self.module(top).name.clone(),
            ..FlatNetlist::default()
        };
        let root = flat.paths.intern(HierPath::root());
        let mut stack = Vec::new();
        let mut names = HashMap::new();

        // Create nets for the top module and record primary ports.
        let top_module = self.module(top);
        module_names(self, top, &mut flat, &mut names)?;
        let mut net_map = Vec::with_capacity(top_module.nets.len());
        for i in 0..top_module.nets.len() {
            let leaf = names[&top].nets[i];
            net_map.push(flat.push_net_parts(root, leaf)?);
        }
        for port in &top_module.ports {
            let net = net_map[port.net.index()];
            match port.dir {
                PortDir::Input => {
                    flat.primary_inputs.push(net);
                    flat.set_driver(net, Some(Driver::PrimaryInput));
                }
                PortDir::Output => flat.primary_outputs.push(net),
            }
        }

        expand(
            self,
            top,
            root,
            HierPath::root(),
            &net_map,
            &mut flat,
            &mut stack,
            &mut names,
        )?;

        flat.build_loads();

        // Connectivity check: every net with loads (or marked as primary
        // output) must have exactly one driver.
        for i in 0..flat.num_nets() {
            let id = NetId(checked_id(i, "nets")?);
            let observed = flat.primary_outputs.contains(&id);
            if flat.net_driver[i] == NO_DRIVER && (flat.net_load_len[i] > 0 || observed) {
                return Err(NetlistError::Undriven(flat.net_full_name(id)));
            }
        }

        Ok(flat)
    }
}

#[allow(clippy::too_many_arguments)]
fn expand(
    design: &Design,
    module_id: ModuleId,
    path_id: PathId,
    path: HierPath,
    net_map: &[NetId],
    flat: &mut FlatNetlist,
    stack: &mut Vec<ModuleId>,
    names: &mut HashMap<ModuleId, ModuleNames>,
) -> Result<(), NetlistError> {
    if stack.contains(&module_id) {
        return Err(NetlistError::RecursiveHierarchy(
            design.module(module_id).name.clone(),
        ));
    }
    stack.push(module_id);
    let module = design.module(module_id);
    module_names(design, module_id, flat, names)?;

    for (c, cell) in module.cells.iter().enumerate() {
        let leaf = names[&module_id].cells[c];
        let inputs: Vec<NetId> = cell.inputs.iter().map(|n| net_map[n.index()]).collect();
        let output = net_map[cell.output.index()];
        if flat.raw_driver(output).is_some() {
            return Err(NetlistError::MultipleDrivers(flat.net_full_name(output)));
        }
        let cell_id = flat.push_cell_parts(leaf, path_id, cell.kind, &inputs, output)?;
        flat.set_driver(output, Some(Driver::Cell(cell_id)));
    }

    for inst in &module.instances {
        let child = design.module(inst.module);
        let child_path = path.child(&inst.name);
        let child_path_id = flat.paths.intern(child_path.clone());
        module_names(design, inst.module, flat, names)?;

        // Bind port nets to parent nets; allocate new flat nets for the rest.
        let mut child_map: Vec<Option<NetId>> = vec![None; child.nets.len()];
        for (port, &conn) in child.ports.iter().zip(&inst.connections) {
            child_map[port.net.index()] = Some(net_map[conn.index()]);
        }
        let mut resolved = Vec::with_capacity(child.nets.len());
        for (i, bound) in child_map.iter().enumerate() {
            let id = match bound {
                Some(id) => *id,
                None => {
                    let leaf = names[&inst.module].nets[i];
                    flat.push_net_parts(child_path_id, leaf)?
                }
            };
            resolved.push(id);
        }

        expand(
            design,
            inst.module,
            child_path_id,
            child_path,
            &resolved,
            flat,
            stack,
            names,
        )?;
    }

    stack.pop();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::ModuleBuilder;

    /// Two-level hierarchy: top instantiates two half adders.
    fn hierarchical_design() -> Design {
        let mut design = Design::new();

        let mut ha = ModuleBuilder::new("half_adder");
        let a = ha.port("a", PortDir::Input);
        let b = ha.port("b", PortDir::Input);
        let s = ha.port("s", PortDir::Output);
        let c = ha.port("c", PortDir::Output);
        ha.cell("u_xor", CellKind::Xor2, &[a, b], &[s]).unwrap();
        ha.cell("u_and", CellKind::And2, &[a, b], &[c]).unwrap();
        let ha_id = design.add_module(ha.finish()).unwrap();

        let mut top = ModuleBuilder::new("top");
        let x = top.port("x", PortDir::Input);
        let y = top.port("y", PortDir::Input);
        let z = top.port("z", PortDir::Input);
        let sum = top.port("sum", PortDir::Output);
        let carry = top.port("carry", PortDir::Output);
        let s0 = top.net("s0");
        let c0 = top.net("c0");
        let c1 = top.net("c1");
        top.instance("u_ha0", ha_id, &[x, y, s0, c0]).unwrap();
        top.instance("u_ha1", ha_id, &[s0, z, sum, c1]).unwrap();
        top.cell("u_or", CellKind::Or2, &[c0, c1], &[carry])
            .unwrap();
        let top_id = design.add_module(top.finish()).unwrap();
        design.set_top(top_id).unwrap();
        design
    }

    #[test]
    fn flatten_counts_cells_and_ports() {
        let flat = hierarchical_design().flatten().unwrap();
        assert_eq!(flat.cells().len(), 5); // 2 per half adder + 1 OR
        assert_eq!(flat.primary_inputs().len(), 3);
        assert_eq!(flat.primary_outputs().len(), 2);
    }

    #[test]
    fn flatten_assigns_paths() {
        let flat = hierarchical_design().flatten().unwrap();
        let names: Vec<String> = flat
            .iter_cells()
            .map(|(id, _)| flat.cell_full_name(id))
            .collect();
        assert!(names.contains(&"u_ha0.u_xor".to_string()));
        assert!(names.contains(&"u_ha1.u_and".to_string()));
        assert!(names.contains(&"u_or".to_string()));
    }

    #[test]
    fn flatten_merges_port_nets() {
        let flat = hierarchical_design().flatten().unwrap();
        // The net s0 connects u_ha0's output to u_ha1's input — one flat net.
        let s0 = flat.net_by_name("s0").unwrap();
        assert!(matches!(flat.net(s0).driver, Some(Driver::Cell(_))));
        assert_eq!(flat.net(s0).loads.len(), 2); // u_ha1.u_xor and u_ha1.u_and
    }

    #[test]
    fn lookup_by_name_round_trips() {
        let flat = hierarchical_design().flatten().unwrap();
        for (id, _) in flat.iter_cells() {
            let name = flat.cell_full_name(id);
            assert_eq!(flat.cell_by_name(&name), Some(id));
        }
    }

    #[test]
    fn net_names_round_trip_through_parts() {
        let flat = hierarchical_design().flatten().unwrap();
        for i in 0..flat.num_nets() {
            let id = NetId(i as u32);
            let name = flat.net_full_name(id);
            assert_eq!(flat.net_by_name(&name), Some(id), "{name}");
        }
        // Instance-internal nets keep their dotted prefix... none exist in
        // this design (all half-adder nets are ports), so check a cell path
        // indirectly: u_ha0.u_xor drives the parent net s0.
        let s0 = flat.net_by_name("s0").unwrap();
        assert_eq!(flat.net_full_name(s0), "s0");
    }

    #[test]
    fn flatten_requires_top() {
        let design = Design::new();
        assert_eq!(design.flatten().unwrap_err(), NetlistError::NoTop);
    }

    #[test]
    fn undriven_loaded_net_is_rejected() {
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("bad");
        let y = mb.port("y", PortDir::Output);
        let floating = mb.net("floating");
        mb.cell("u0", CellKind::Buf, &[floating], &[y]).unwrap();
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        assert!(matches!(
            design.flatten().unwrap_err(),
            NetlistError::Undriven(_)
        ));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("bad");
        let a = mb.port("a", PortDir::Input);
        let y = mb.port("y", PortDir::Output);
        mb.cell("u0", CellKind::Buf, &[a], &[y]).unwrap();
        mb.cell("u1", CellKind::Inv, &[a], &[y]).unwrap();
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        assert!(matches!(
            design.flatten().unwrap_err(),
            NetlistError::MultipleDrivers(_)
        ));
    }

    #[test]
    fn levelize_orders_by_depth() {
        let flat = hierarchical_design().flatten().unwrap();
        let lv = flat.levelize().unwrap();
        assert_eq!(lv.order.len(), 5);
        // The OR gate consumes c0 (depth 1) and c1 (depth 2 via s0) so its
        // depth must exceed both half-adder gates it depends on.
        let or_id = flat.cell_by_name("u_or").unwrap();
        let ha1_and = flat.cell_by_name("u_ha1.u_and").unwrap();
        assert!(lv.cell_depth[or_id.index()] > lv.cell_depth[ha1_and.index()]);
        assert_eq!(lv.max_depth, lv.cell_depth[or_id.index()]);
    }

    #[test]
    fn levelize_detects_loop() {
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("looped");
        let a = mb.port("a", PortDir::Input);
        let y = mb.port("y", PortDir::Output);
        let w = mb.net("w");
        mb.cell("u0", CellKind::And2, &[a, y], &[w]).unwrap();
        mb.cell("u1", CellKind::Buf, &[w], &[y]).unwrap();
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        let flat = design.flatten().unwrap();
        assert!(matches!(
            flat.levelize().unwrap_err(),
            NetlistError::CombinationalLoop(_)
        ));
    }

    #[test]
    fn sequential_cells_break_loops() {
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("toggler");
        let clk = mb.port("clk", PortDir::Input);
        let q = mb.port("q", PortDir::Output);
        let nq = mb.net("nq");
        mb.cell("u_inv", CellKind::Inv, &[q], &[nq]).unwrap();
        mb.cell("u_ff", CellKind::Dff, &[clk, nq], &[q]).unwrap();
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        let flat = design.flatten().unwrap();
        let lv = flat.levelize().unwrap();
        assert_eq!(lv.order.len(), 1); // just the inverter
        assert_eq!(lv.max_depth, 0);
    }

    #[test]
    fn checked_id_rejects_id_space_exhaustion() {
        assert_eq!(checked_id(0, "cells").unwrap(), 0);
        assert_eq!(checked_id(41, "cells").unwrap(), 41);
        assert_eq!(
            checked_id((u32::MAX - 2) as usize, "cells").unwrap(),
            u32::MAX - 2
        );
        // The two top values are reserved for driver-encoding sentinels.
        assert_eq!(
            checked_id((u32::MAX - 1) as usize, "cells").unwrap_err(),
            NetlistError::TooLarge { what: "cells" }
        );
        assert_eq!(
            checked_id(u32::MAX as usize, "nets").unwrap_err(),
            NetlistError::TooLarge { what: "nets" }
        );
        assert_eq!(
            checked_id(usize::MAX, "nets").unwrap_err(),
            NetlistError::TooLarge { what: "nets" }
        );
    }

    #[test]
    fn too_large_error_displays_the_overflowing_column() {
        let err = checked_id(usize::MAX, "cells").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("cells"), "{msg}");
        assert!(msg.contains("32-bit"), "{msg}");
    }

    #[test]
    fn name_arena_round_trips() {
        let mut arena = NameArena::default();
        let a = arena.intern("u_inv").unwrap();
        let b = arena.intern("").unwrap();
        let c = arena.intern("u_ff").unwrap();
        assert_eq!(arena.resolve(a), "u_inv");
        assert_eq!(arena.resolve(b), "");
        assert_eq!(arena.resolve(c), "u_ff");
        assert_eq!(arena.len(), 3);
    }

    #[test]
    fn mutation_invalidates_lazy_lookup() {
        let mut flat = hierarchical_design().flatten().unwrap();
        assert!(flat.cell_by_name("u_or").is_some()); // builds the table
        let fresh = flat.add_net("fresh_net".to_owned());
        assert_eq!(flat.net_by_name("fresh_net"), Some(fresh));
        let path = flat.cell(flat.cell_by_name("u_or").unwrap()).path;
        let id = flat
            .add_cell(
                "u_extra".to_owned(),
                path,
                CellKind::Buf,
                &[flat.net_by_name("s0").unwrap()],
                fresh,
            )
            .unwrap();
        assert_eq!(flat.cell_by_name("u_extra"), Some(id));
    }
}
