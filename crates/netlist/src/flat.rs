//! Elaboration of hierarchical designs into flat netlists.
//!
//! A [`FlatNetlist`] is the form consumed by the simulator, the clustering
//! algorithm and the feature extractor: a flat array of primitive cells, each
//! tagged with its hierarchical instance path, plus fully resolved nets with
//! driver/load connectivity.

use crate::cell::CellKind;
use crate::design::{Design, PortDir};
use crate::error::NetlistError;
use crate::path::{HierPath, PathId, PathInterner};
use crate::ModuleId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a cell in a [`FlatNetlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellId(pub u32);

impl CellId {
    /// Raw index of the cell.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a net in a [`FlatNetlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetId(pub u32);

impl NetId {
    /// Raw index of the net.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Driver {
    /// The output pin of a cell.
    Cell(CellId),
    /// A primary input of the flattened design.
    PrimaryInput,
}

/// A primitive cell in the flat netlist.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlatCell {
    /// Leaf instance name (unique within its parent module instance).
    pub name: String,
    /// Hierarchical instance path of the containing module.
    pub path: PathId,
    /// Library cell kind.
    pub kind: CellKind,
    /// Input nets in canonical pin order.
    pub inputs: Vec<NetId>,
    /// Net driven by the output pin.
    pub output: NetId,
}

/// A net in the flat netlist.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlatNet {
    /// Full hierarchical name.
    pub name: String,
    /// The unique driver, if any.
    pub driver: Option<Driver>,
    /// Cells reading this net, as `(cell, input-pin index)` pairs.
    pub loads: Vec<(CellId, u8)>,
}

/// Result of levelizing the combinational portion of a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Levelization {
    /// Topological order of all combinational cells (sources first).
    pub order: Vec<CellId>,
    /// Per-cell combinational depth. Sequential cells and tie cells have
    /// depth 0; a combinational cell's depth is one more than the maximum
    /// depth among its input drivers.
    pub cell_depth: Vec<u32>,
    /// Maximum combinational depth in the design.
    pub max_depth: u32,
}

/// A flattened gate-level netlist.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FlatNetlist {
    /// Name of the top module this netlist was flattened from.
    pub top_name: String,
    cells: Vec<FlatCell>,
    nets: Vec<FlatNet>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
    paths: PathInterner,
    #[serde(skip)]
    cell_by_name: HashMap<String, CellId>,
    #[serde(skip)]
    net_by_name: HashMap<String, NetId>,
}

impl FlatNetlist {
    /// All cells.
    pub fn cells(&self) -> &[FlatCell] {
        &self.cells
    }

    /// All nets.
    pub fn nets(&self) -> &[FlatNet] {
        &self.nets
    }

    /// Resolves a cell id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn cell(&self, id: CellId) -> &FlatCell {
        &self.cells[id.index()]
    }

    /// Resolves a net id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn net(&self, id: NetId) -> &FlatNet {
        &self.nets[id.index()]
    }

    /// Primary inputs (top-module input ports), in port order.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// Primary outputs (top-module output ports), in port order.
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.primary_outputs
    }

    /// The interner resolving cell [`PathId`]s.
    pub fn paths(&self) -> &PathInterner {
        &self.paths
    }

    /// Full hierarchical name of a cell.
    pub fn cell_full_name(&self, id: CellId) -> String {
        let cell = self.cell(id);
        self.paths.resolve(cell.path).join(&cell.name)
    }

    /// Looks a cell up by full hierarchical name.
    pub fn cell_by_name(&self, name: &str) -> Option<CellId> {
        self.cell_by_name.get(name).copied()
    }

    /// Looks a net up by full hierarchical name.
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.net_by_name.get(name).copied()
    }

    /// Number of cells whose output fans out to `net`'s loads.
    pub fn fanout(&self, net: NetId) -> usize {
        self.net(net).loads.len()
    }

    /// Iterates over `(id, cell)` pairs.
    pub fn iter_cells(&self) -> impl Iterator<Item = (CellId, &FlatCell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId(i as u32), c))
    }

    pub(crate) fn nets_raw(&mut self) -> &mut Vec<FlatNet> {
        &mut self.nets
    }

    pub(crate) fn cells_raw(&mut self) -> &mut Vec<FlatCell> {
        &mut self.cells
    }

    /// Rebuilds name lookup tables (needed after deserialization).
    pub fn rebuild_lookup(&mut self) {
        self.paths.rebuild_lookup();
        self.cell_by_name = self
            .cells
            .iter()
            .enumerate()
            .map(|(i, c)| (self.paths.resolve(c.path).join(&c.name), CellId(i as u32)))
            .collect();
        self.net_by_name = self
            .nets
            .iter()
            .enumerate()
            .map(|(i, n)| (n.name.clone(), NetId(i as u32)))
            .collect();
    }

    /// Levelizes the combinational portion of the netlist.
    ///
    /// Sources are primary inputs, tie cells and sequential-cell outputs.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalLoop`] if combinational cells
    /// form a cycle.
    pub fn levelize(&self) -> Result<Levelization, NetlistError> {
        let mut pending: Vec<u32> = vec![0; self.cells.len()];
        let mut order = Vec::new();
        let mut ready = Vec::new();
        let mut cell_depth = vec![0u32; self.cells.len()];

        for (i, cell) in self.cells.iter().enumerate() {
            if cell.kind.is_sequential() {
                // Sequential cells are sources; they never wait on inputs here.
                continue;
            }
            let mut count = 0;
            for &input in &cell.inputs {
                if let Some(Driver::Cell(driver)) = self.nets[input.index()].driver {
                    if self.cells[driver.index()].kind.is_combinational() {
                        count += 1;
                    }
                }
            }
            pending[i] = count;
            if count == 0 {
                ready.push(CellId(i as u32));
            }
        }

        let total_comb = self
            .cells
            .iter()
            .filter(|c| c.kind.is_combinational())
            .count();

        let mut max_depth = 0;
        while let Some(id) = ready.pop() {
            order.push(id);
            let cell = &self.cells[id.index()];
            let mut depth = 0;
            for &input in &cell.inputs {
                if let Some(Driver::Cell(driver)) = self.nets[input.index()].driver {
                    if self.cells[driver.index()].kind.is_combinational() {
                        depth = depth.max(cell_depth[driver.index()] + 1);
                    }
                }
            }
            cell_depth[id.index()] = depth;
            max_depth = max_depth.max(depth);
            for &(load, _pin) in &self.nets[cell.output.index()].loads {
                if self.cells[load.index()].kind.is_combinational() {
                    pending[load.index()] -= 1;
                    if pending[load.index()] == 0 {
                        ready.push(load);
                    }
                }
            }
        }

        if order.len() != total_comb {
            // Find a cell stuck in the cycle for the error message.
            let stuck = self
                .cells
                .iter()
                .enumerate()
                .find(|(i, c)| c.kind.is_combinational() && pending[*i] > 0)
                .map(|(i, _)| self.nets[self.cells[i].output.index()].name.clone())
                .unwrap_or_default();
            return Err(NetlistError::CombinationalLoop(stuck));
        }

        Ok(Levelization {
            order,
            cell_depth,
            max_depth,
        })
    }
}

impl Design {
    /// Flattens the design starting from its top module.
    ///
    /// Every module instance is expanded recursively; submodule port nets are
    /// merged with the parent nets they connect to. Cell and net names are
    /// prefixed with their dotted instance path.
    ///
    /// # Errors
    ///
    /// - [`NetlistError::NoTop`] when no top module is set.
    /// - [`NetlistError::RecursiveHierarchy`] on instantiation cycles.
    /// - [`NetlistError::MultipleDrivers`] / [`NetlistError::Undriven`] when
    ///   connectivity is inconsistent after merging.
    pub fn flatten(&self) -> Result<FlatNetlist, NetlistError> {
        let top = self.top().ok_or(NetlistError::NoTop)?;
        let mut flat = FlatNetlist {
            top_name: self.module(top).name.clone(),
            ..FlatNetlist::default()
        };
        let root = flat.paths.intern(HierPath::root());
        let mut stack = Vec::new();

        // Create nets for the top module and record primary ports.
        let top_module = self.module(top);
        let mut net_map = Vec::with_capacity(top_module.nets.len());
        for name in &top_module.nets {
            net_map.push(push_net(&mut flat, name.clone()));
        }
        for port in &top_module.ports {
            let net = net_map[port.net.index()];
            match port.dir {
                PortDir::Input => {
                    flat.primary_inputs.push(net);
                    flat.nets[net.index()].driver = Some(Driver::PrimaryInput);
                }
                PortDir::Output => flat.primary_outputs.push(net),
            }
        }

        expand(
            self,
            top,
            root,
            HierPath::root(),
            &net_map,
            &mut flat,
            &mut stack,
        )?;

        // Connectivity check: every net with loads (or marked as primary
        // output) must have exactly one driver.
        for (i, net) in flat.nets.iter().enumerate() {
            let id = NetId(i as u32);
            let observed = flat.primary_outputs.contains(&id);
            if net.driver.is_none() && (!net.loads.is_empty() || observed) {
                return Err(NetlistError::Undriven(net.name.clone()));
            }
        }

        flat.rebuild_lookup();
        Ok(flat)
    }
}

fn push_net(flat: &mut FlatNetlist, name: String) -> NetId {
    let id = NetId(flat.nets.len() as u32);
    flat.nets.push(FlatNet {
        name,
        driver: None,
        loads: Vec::new(),
    });
    id
}

fn expand(
    design: &Design,
    module_id: ModuleId,
    path_id: PathId,
    path: HierPath,
    net_map: &[NetId],
    flat: &mut FlatNetlist,
    stack: &mut Vec<ModuleId>,
) -> Result<(), NetlistError> {
    if stack.contains(&module_id) {
        return Err(NetlistError::RecursiveHierarchy(
            design.module(module_id).name.clone(),
        ));
    }
    stack.push(module_id);
    let module = design.module(module_id);

    for cell in &module.cells {
        let cell_id = CellId(flat.cells.len() as u32);
        let inputs: Vec<NetId> = cell.inputs.iter().map(|n| net_map[n.index()]).collect();
        let output = net_map[cell.output.index()];
        for (pin, &net) in inputs.iter().enumerate() {
            flat.nets[net.index()].loads.push((cell_id, pin as u8));
        }
        {
            let out_net = &mut flat.nets[output.index()];
            if out_net.driver.is_some() {
                return Err(NetlistError::MultipleDrivers(out_net.name.clone()));
            }
            out_net.driver = Some(Driver::Cell(cell_id));
        }
        flat.cells.push(FlatCell {
            name: cell.name.clone(),
            path: path_id,
            kind: cell.kind,
            inputs,
            output,
        });
    }

    for inst in &module.instances {
        let child = design.module(inst.module);
        let child_path = path.child(&inst.name);
        let child_path_id = flat.paths.intern(child_path.clone());

        // Bind port nets to parent nets; allocate new flat nets for the rest.
        let mut child_map: Vec<Option<NetId>> = vec![None; child.nets.len()];
        for (port, &conn) in child.ports.iter().zip(&inst.connections) {
            child_map[port.net.index()] = Some(net_map[conn.index()]);
        }
        let mut resolved = Vec::with_capacity(child.nets.len());
        for (i, name) in child.nets.iter().enumerate() {
            let id = match child_map[i] {
                Some(id) => id,
                None => push_net(flat, child_path.join(name)),
            };
            resolved.push(id);
        }

        expand(
            design,
            inst.module,
            child_path_id,
            child_path,
            &resolved,
            flat,
            stack,
        )?;
    }

    stack.pop();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::ModuleBuilder;

    /// Two-level hierarchy: top instantiates two half adders.
    fn hierarchical_design() -> Design {
        let mut design = Design::new();

        let mut ha = ModuleBuilder::new("half_adder");
        let a = ha.port("a", PortDir::Input);
        let b = ha.port("b", PortDir::Input);
        let s = ha.port("s", PortDir::Output);
        let c = ha.port("c", PortDir::Output);
        ha.cell("u_xor", CellKind::Xor2, &[a, b], &[s]).unwrap();
        ha.cell("u_and", CellKind::And2, &[a, b], &[c]).unwrap();
        let ha_id = design.add_module(ha.finish()).unwrap();

        let mut top = ModuleBuilder::new("top");
        let x = top.port("x", PortDir::Input);
        let y = top.port("y", PortDir::Input);
        let z = top.port("z", PortDir::Input);
        let sum = top.port("sum", PortDir::Output);
        let carry = top.port("carry", PortDir::Output);
        let s0 = top.net("s0");
        let c0 = top.net("c0");
        let c1 = top.net("c1");
        top.instance("u_ha0", ha_id, &[x, y, s0, c0]).unwrap();
        top.instance("u_ha1", ha_id, &[s0, z, sum, c1]).unwrap();
        top.cell("u_or", CellKind::Or2, &[c0, c1], &[carry])
            .unwrap();
        let top_id = design.add_module(top.finish()).unwrap();
        design.set_top(top_id).unwrap();
        design
    }

    #[test]
    fn flatten_counts_cells_and_ports() {
        let flat = hierarchical_design().flatten().unwrap();
        assert_eq!(flat.cells().len(), 5); // 2 per half adder + 1 OR
        assert_eq!(flat.primary_inputs().len(), 3);
        assert_eq!(flat.primary_outputs().len(), 2);
    }

    #[test]
    fn flatten_assigns_paths() {
        let flat = hierarchical_design().flatten().unwrap();
        let names: Vec<String> = flat
            .iter_cells()
            .map(|(id, _)| flat.cell_full_name(id))
            .collect();
        assert!(names.contains(&"u_ha0.u_xor".to_string()));
        assert!(names.contains(&"u_ha1.u_and".to_string()));
        assert!(names.contains(&"u_or".to_string()));
    }

    #[test]
    fn flatten_merges_port_nets() {
        let flat = hierarchical_design().flatten().unwrap();
        // The net s0 connects u_ha0's output to u_ha1's input — one flat net.
        let s0 = flat.net_by_name("s0").unwrap();
        assert!(matches!(flat.net(s0).driver, Some(Driver::Cell(_))));
        assert_eq!(flat.net(s0).loads.len(), 2); // u_ha1.u_xor and u_ha1.u_and
    }

    #[test]
    fn lookup_by_name_round_trips() {
        let flat = hierarchical_design().flatten().unwrap();
        for (id, _) in flat.iter_cells() {
            let name = flat.cell_full_name(id);
            assert_eq!(flat.cell_by_name(&name), Some(id));
        }
    }

    #[test]
    fn flatten_requires_top() {
        let design = Design::new();
        assert_eq!(design.flatten().unwrap_err(), NetlistError::NoTop);
    }

    #[test]
    fn undriven_loaded_net_is_rejected() {
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("bad");
        let y = mb.port("y", PortDir::Output);
        let floating = mb.net("floating");
        mb.cell("u0", CellKind::Buf, &[floating], &[y]).unwrap();
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        assert!(matches!(
            design.flatten().unwrap_err(),
            NetlistError::Undriven(_)
        ));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("bad");
        let a = mb.port("a", PortDir::Input);
        let y = mb.port("y", PortDir::Output);
        mb.cell("u0", CellKind::Buf, &[a], &[y]).unwrap();
        mb.cell("u1", CellKind::Inv, &[a], &[y]).unwrap();
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        assert!(matches!(
            design.flatten().unwrap_err(),
            NetlistError::MultipleDrivers(_)
        ));
    }

    #[test]
    fn levelize_orders_by_depth() {
        let flat = hierarchical_design().flatten().unwrap();
        let lv = flat.levelize().unwrap();
        assert_eq!(lv.order.len(), 5);
        // The OR gate consumes c0 (depth 1) and c1 (depth 2 via s0) so its
        // depth must exceed both half-adder gates it depends on.
        let or_id = flat.cell_by_name("u_or").unwrap();
        let ha1_and = flat.cell_by_name("u_ha1.u_and").unwrap();
        assert!(lv.cell_depth[or_id.index()] > lv.cell_depth[ha1_and.index()]);
        assert_eq!(lv.max_depth, lv.cell_depth[or_id.index()]);
    }

    #[test]
    fn levelize_detects_loop() {
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("looped");
        let a = mb.port("a", PortDir::Input);
        let y = mb.port("y", PortDir::Output);
        let w = mb.net("w");
        mb.cell("u0", CellKind::And2, &[a, y], &[w]).unwrap();
        mb.cell("u1", CellKind::Buf, &[w], &[y]).unwrap();
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        let flat = design.flatten().unwrap();
        assert!(matches!(
            flat.levelize().unwrap_err(),
            NetlistError::CombinationalLoop(_)
        ));
    }

    #[test]
    fn sequential_cells_break_loops() {
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("toggler");
        let clk = mb.port("clk", PortDir::Input);
        let q = mb.port("q", PortDir::Output);
        let nq = mb.net("nq");
        mb.cell("u_inv", CellKind::Inv, &[q], &[nq]).unwrap();
        mb.cell("u_ff", CellKind::Dff, &[clk, nq], &[q]).unwrap();
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        let flat = design.flatten().unwrap();
        let lv = flat.levelize().unwrap();
        assert_eq!(lv.order.len(), 1); // just the inverter
        assert_eq!(lv.max_depth, 0);
    }
}
