//! Margin-driven active-learning sampling.
//!
//! The paper's pipeline spends its simulation budget up front: an
//! equal-proportion sample per cluster, injected in one shot. Most of that
//! budget is wasted on cells the SVM would classify confidently anyway.
//! [`Ssresf::analyze_active`] replaces the one-shot draw with an iterative
//! loop that concentrates injections on the cells the classifier is least
//! sure about:
//!
//! 1. simulate a small stratified *seed* sample (a scaled-down
//!    [`sample_clusters`] draw),
//! 2. train an SVM on the labeled cells via warm-started SMO
//!    ([`SvmModel::train_warm`]) that reuses the previous round's alphas
//!    and kernel-row cache,
//! 3. score every unlabeled cell by its absolute decision margin using the
//!    O(d) fast-decision path,
//! 4. inject only the lowest-margin batch and fold the new labels in,
//! 5. stop when whole-netlist predictions stabilize across rounds, the
//!    round cap is hit, or the injection budget is exhausted.
//!
//! The final classifier is refit with the full
//! [`train_sensitivity`](crate::sensitivity::train_sensitivity) pipeline
//! (grid search, CV metrics, ROC) on everything labeled, so the returned
//! [`Analysis`] is drop-in comparable with [`Ssresf::analyze`] — it just
//! cost strictly fewer injections for the same accuracy. Results are
//! bit-identical for every thread count and reproducible from
//! `(seed, config)`: the golden run, fault streams, seed draw, margin
//! ordering and batch tie-breaks are all deterministic.

use crate::campaign::{faults_for_cell, run_injection_jobs_with_golden, CampaignOutcome};
use crate::clustering::cluster_cells;
use crate::error::SsresfError;
use crate::framework::{Analysis, LabelRule, Ssresf, Timing};
use crate::progress::Instrument;
use crate::sampling::{sample_clusters, ClusterSample, SamplingConfig};
use crate::sensitivity::train_sensitivity;
use crate::ser::evaluate_ser;
use crate::workload::Dut;
use serde::{Deserialize, Serialize};
use ssresf_mlcore::{
    parallel_map, Dataset, SmoContext, StandardScaler, SvmModel, SvmParams, TrainStats,
};
use ssresf_netlist::{CellId, FeatureExtractor, FlatNetlist, ModuleClass};
use ssresf_sim::Fault;
use std::collections::BTreeMap;
use std::time::Instant;

/// Configuration of the active-learning loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActiveLearningConfig {
    /// Fraction of each cluster in the stratified seed draw, in `(0, 1]`.
    /// Deliberately far below [`SamplingConfig::fraction`] — the margin
    /// rounds top up where it matters.
    pub seed_fraction: f64,
    /// Per-cluster floor of the seed draw (so tiny clusters are still
    /// represented, as in the one-shot sampler).
    pub seed_min_per_cluster: usize,
    /// Cells injected per margin round.
    pub batch_size: usize,
    /// Cap on training rounds (including the round that trains on the
    /// seed alone).
    pub max_rounds: usize,
    /// A round is *stable* when at most this fraction of whole-netlist
    /// predictions changed since the previous round.
    pub stability_threshold: f64,
    /// Consecutive stable rounds that end the loop.
    pub stability_rounds: usize,
    /// Hard cap on total injected cells (`None` = uncapped; the loop then
    /// stops on stability or `max_rounds`).
    pub budget: Option<usize>,
}

impl Default for ActiveLearningConfig {
    fn default() -> Self {
        ActiveLearningConfig {
            seed_fraction: 0.05,
            seed_min_per_cluster: 2,
            batch_size: 16,
            max_rounds: 12,
            stability_threshold: 0.005,
            stability_rounds: 2,
            budget: None,
        }
    }
}

/// Diagnostics of one active-learning round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActiveRound {
    /// Round index (0 = trained on the seed sample alone).
    pub round: usize,
    /// Labeled cells entering this round's training.
    pub labeled: usize,
    /// Sensitive labels among them.
    pub positives: usize,
    /// Cells injected after this round (0 on the final round).
    pub injected: usize,
    /// Smallest |decision margin| over the unlabeled pool (0 when the
    /// pool is empty or the round fell back).
    pub min_margin: f64,
    /// Mean |decision margin| over the unlabeled pool.
    pub mean_margin: f64,
    /// Fraction of whole-netlist predictions that changed since the
    /// previous round (1.0 on the first trained round).
    pub churn: f64,
    /// True when the labels were still single-class, so a non-margin
    /// fallback batch (lowest unlabeled cell ids) was injected instead of
    /// training.
    pub fallback: bool,
}

/// Everything [`Ssresf::analyze_active`] produced: a regular [`Analysis`]
/// plus the round-by-round trace of how the injection budget was spent.
#[derive(Debug)]
pub struct ActiveAnalysis {
    /// The pipeline artifacts, drop-in comparable with
    /// [`Ssresf::analyze`].
    pub analysis: Analysis,
    /// Per-round diagnostics in execution order.
    pub rounds: Vec<ActiveRound>,
    /// Total cells injected across the seed and all batches.
    pub injected_cells: usize,
    /// Cells the one-shot equal-proportion sampler would have injected
    /// under this framework's [`SamplingConfig`].
    pub baseline_cells: usize,
    /// Fault injections avoided relative to that one-shot baseline
    /// (`baseline_cells × injections_per_cell − records`, floored at 0).
    pub injections_saved: usize,
}

impl Ssresf {
    /// Runs the pipeline with margin-driven active-learning sampling in
    /// place of the one-shot equal-proportion draw.
    ///
    /// # Errors
    ///
    /// Same as [`Ssresf::analyze`], plus [`SsresfError::Config`] for an
    /// invalid `active` configuration.
    pub fn analyze_active(
        &self,
        netlist: &FlatNetlist,
        active: &ActiveLearningConfig,
    ) -> Result<ActiveAnalysis, SsresfError> {
        self.analyze_active_with(netlist, active, &Instrument::default())
    }

    /// [`analyze_active`](Ssresf::analyze_active) with observability hooks.
    ///
    /// On top of the [`analyze_with`](Ssresf::analyze_with) metric set,
    /// `hooks.metrics` receives `active.rounds`,
    /// `active.injections.total`, `active.injections_saved`, an
    /// `active.margin` histogram of every selected batch margin (plus
    /// per-round `active.round.<n>.margin` histograms) and the
    /// `svm.kernel_cache.hit_rate` gauge accumulated across the
    /// warm-started rounds. Hooks never change results.
    ///
    /// # Errors
    ///
    /// Same as [`analyze_active`](Ssresf::analyze_active).
    pub fn analyze_active_with(
        &self,
        netlist: &FlatNetlist,
        active: &ActiveLearningConfig,
        hooks: &Instrument<'_>,
    ) -> Result<ActiveAnalysis, SsresfError> {
        self.validate_config()?;
        validate_active_config(active)?;
        let config = self.config();
        let dut = Dut::from_conventions(netlist)?;
        let mut timing = Timing::default();
        let stage = |name: &str, elapsed: std::time::Duration| {
            if let Some(metrics) = hooks.metrics {
                metrics.timing_add(name, elapsed);
            }
            elapsed
        };

        // Clustering, then ONE golden run shared by every round.
        let started = Instant::now();
        let clustering = cluster_cells(netlist, &config.clustering)?;
        timing.clustering = stage("stage.clustering", started.elapsed());
        let started = Instant::now();
        let golden = dut.run_golden_with_checkpoints(
            config.campaign.engine,
            &config.campaign.workload,
            config.campaign.checkpoint_interval,
        )?;
        timing.golden = stage("stage.golden", started.elapsed());

        // Features once per netlist, standardized once over every cell so
        // margin scores are comparable across rounds.
        let started = Instant::now();
        let extractor = FeatureExtractor::new(netlist)?;
        let cell_ids: Vec<CellId> = netlist.iter_cells().map(|(id, _)| id).collect();
        let features = parallel_map(&cell_ids, config.sensitivity.threads, |_, &id| {
            extractor.extract_cell(id, Some(&golden.outcome.activity_per_cycle))
        });
        let raw: Vec<Vec<f64>> = features.iter().map(|f| f.values.clone()).collect();
        let scaler = StandardScaler::fit(&raw).map_err(SsresfError::Ml)?;
        let scaled = scaler.transform(&raw);
        timing.features = stage("stage.features", started.elapsed());

        // Stratified seed draw (a scaled-down one-shot sample).
        let started = Instant::now();
        let seed_sample = sample_clusters(
            &clustering,
            &SamplingConfig {
                fraction: active.seed_fraction,
                min_per_cluster: active.seed_min_per_cluster,
                seed: config.sampling.seed,
                budget: active.budget,
            },
        )?;
        timing.sampling = stage("stage.sampling", started.elapsed());

        // Injection-order bookkeeping. `injected_order` is append-only so
        // warm-started SMO sees stable row positions across rounds;
        // `sample` keeps the per-cluster structure SER evaluation needs.
        let mut sample = ClusterSample {
            per_cluster: vec![Vec::new(); clustering.members.len()],
        };
        let mut injected_order: Vec<CellId> = Vec::new();
        let mut labeled = vec![false; cell_ids.len()];
        let mut merged: Option<CampaignOutcome> = None;
        let inject = |cells: &[CellId],
                      sample: &mut ClusterSample,
                      injected_order: &mut Vec<CellId>,
                      labeled: &mut Vec<bool>,
                      merged: &mut Option<CampaignOutcome>,
                      timing: &mut Timing|
         -> Result<(), SsresfError> {
            let jobs: Vec<(CellId, Fault)> = cells
                .iter()
                .flat_map(|&cell| {
                    faults_for_cell(&dut, cell, &config.campaign)
                        .into_iter()
                        .map(move |f| (cell, f))
                })
                .collect();
            let outcome =
                run_injection_jobs_with_golden(&dut, jobs, &config.campaign, &golden, hooks)?;
            timing.injections += outcome.simulation_time;
            for &cell in cells {
                let cluster = clustering.cluster_of(cell);
                let members = &mut sample.per_cluster[cluster];
                let pos = members.partition_point(|&c| c < cell);
                members.insert(pos, cell);
                injected_order.push(cell);
                labeled[cell.index()] = true;
            }
            match merged {
                Some(m) => {
                    m.records.extend(outcome.records);
                    m.simulation_time += outcome.simulation_time;
                    m.total_work += outcome.total_work;
                    m.telemetry.engine.accumulate(outcome.telemetry.engine);
                    m.telemetry.checkpoint_restores += outcome.telemetry.checkpoint_restores;
                    m.telemetry.early_stop_truncations += outcome.telemetry.early_stop_truncations;
                    m.telemetry.collapsed_faults += outcome.telemetry.collapsed_faults;
                    m.telemetry.lane_refills += outcome.telemetry.lane_refills;
                }
                None => *merged = Some(outcome),
            }
            Ok(())
        };

        if config.campaign.injections_per_cell == 0 {
            return Err(SsresfError::Config("injections_per_cell is 0".into()));
        }
        inject(
            &seed_sample.all_cells(),
            &mut sample,
            &mut injected_order,
            &mut labeled,
            &mut merged,
            &mut timing,
        )?;

        // The margin-driven rounds.
        let mut ctx = SmoContext::new(config.sensitivity.svm.cache_rows);
        let mut warm_stats = TrainStats::default();
        let mut rounds: Vec<ActiveRound> = Vec::new();
        let mut prev_predictions: Option<Vec<bool>> = None;
        let mut stable = 0usize;
        let mut ser;
        let mut labels;
        loop {
            let campaign = merged.as_ref().expect("seed round injected");
            let started = Instant::now();
            ser = evaluate_ser(netlist, &clustering, &sample, campaign)?;
            timing.ser += stage("stage.ser", started.elapsed());
            labels = label_cells(
                &injected_order,
                campaign,
                &clustering,
                &ser,
                config.labeling,
            );

            let round = rounds.len();
            let positives = labels.iter().filter(|&&(_, s)| s).count();
            let budget_left = active
                .budget
                .map(|b| b.saturating_sub(injected_order.len()))
                .unwrap_or(usize::MAX);
            let unlabeled: Vec<CellId> = cell_ids
                .iter()
                .copied()
                .filter(|&id| !labeled[id.index()])
                .collect();

            if positives == 0 || positives == labels.len() {
                // Single class so far: no margin to rank by. Fall back to
                // the lowest unlabeled cell ids — deterministic, and each
                // batch widens the label pool until both classes appear.
                let take = active.batch_size.min(budget_left).min(unlabeled.len());
                rounds.push(ActiveRound {
                    round,
                    labeled: labels.len(),
                    positives,
                    injected: take,
                    min_margin: 0.0,
                    mean_margin: 0.0,
                    churn: 1.0,
                    fallback: true,
                });
                if take == 0 || round + 1 >= active.max_rounds {
                    break;
                }
                let batch: Vec<CellId> = unlabeled[..take].to_vec();
                inject(
                    &batch,
                    &mut sample,
                    &mut injected_order,
                    &mut labeled,
                    &mut merged,
                    &mut timing,
                )?;
                continue;
            }

            // Warm-started round model on the netlist-wide scaling.
            let started = Instant::now();
            let rows: Vec<Vec<f64>> = labels
                .iter()
                .map(|&(cell, _)| scaled[cell.index()].clone())
                .collect();
            let y: Vec<i8> = labels
                .iter()
                .map(|&(_, s)| if s { 1 } else { -1 })
                .collect();
            let data = Dataset::new(rows, y).map_err(SsresfError::Ml)?;
            let params = if config.sensitivity.balance_classes {
                let pos = positives.max(1) as f64;
                let neg = (labels.len() - positives).max(1) as f64;
                SvmParams {
                    positive_weight: (neg / pos).clamp(1.0 / 16.0, 16.0),
                    ..config.sensitivity.svm
                }
            } else {
                config.sensitivity.svm
            };
            let model = SvmModel::train_warm(&data, &params, &mut ctx).map_err(SsresfError::Ml)?;
            warm_stats.accumulate(*model.train_stats());
            timing.svm_train += stage("stage.svm_train", started.elapsed());

            // Margin scoring (O(d) fast-decision path) and whole-netlist
            // prediction churn, both order-preserving across threads.
            let margins = parallel_map(&unlabeled, config.sensitivity.threads, |_, &id| {
                model.decision(&scaled[id.index()]).abs()
            });
            let predictions = parallel_map(&cell_ids, config.sensitivity.threads, |_, &id| {
                model.decision(&scaled[id.index()]) >= 0.0
            });
            let churn = match &prev_predictions {
                Some(prev) => {
                    let changed = prev
                        .iter()
                        .zip(&predictions)
                        .filter(|(a, b)| a != b)
                        .count();
                    changed as f64 / predictions.len().max(1) as f64
                }
                None => 1.0,
            };
            prev_predictions = Some(predictions);
            if churn <= active.stability_threshold {
                stable += 1;
            } else {
                stable = 0;
            }

            let min_margin = margins.iter().copied().fold(f64::INFINITY, f64::min);
            let mean_margin = margins.iter().sum::<f64>() / margins.len().max(1) as f64;
            let stop = stable >= active.stability_rounds
                || round + 1 >= active.max_rounds
                || unlabeled.is_empty()
                || budget_left == 0;

            // Lowest-|margin| batch; ties break toward the ascending cell
            // id (the pool is already id-ascending and the sort is
            // stable, so the tie-break is explicit *and* redundant).
            let take = if stop {
                0
            } else {
                active.batch_size.min(budget_left).min(unlabeled.len())
            };
            let mut order: Vec<usize> = (0..unlabeled.len()).collect();
            order.sort_by(|&a, &b| {
                margins[a]
                    .total_cmp(&margins[b])
                    .then(unlabeled[a].cmp(&unlabeled[b]))
            });
            let batch: Vec<CellId> = order.iter().take(take).map(|&i| unlabeled[i]).collect();
            if let Some(metrics) = hooks.metrics {
                for &i in order.iter().take(take) {
                    metrics.observe("active.margin", margins[i]);
                    metrics.observe(&format!("active.round.{round}.margin"), margins[i]);
                }
            }
            rounds.push(ActiveRound {
                round,
                labeled: labels.len(),
                positives,
                injected: batch.len(),
                min_margin: if margins.is_empty() { 0.0 } else { min_margin },
                mean_margin,
                churn,
                fallback: false,
            });
            if batch.is_empty() {
                break;
            }
            inject(
                &batch,
                &mut sample,
                &mut injected_order,
                &mut labeled,
                &mut merged,
                &mut timing,
            )?;
        }
        let campaign = merged.expect("seed round injected");

        // Final fit with the full pipeline (CV metrics, ROC, optional
        // selection/search) on everything labeled.
        let started = Instant::now();
        let (classifier, sensitivity_report) =
            train_sensitivity(&features, &labels, &config.sensitivity)?;
        timing.svm_train += stage("stage.svm_train", started.elapsed());

        let started = Instant::now();
        let predictions = classifier.classify_all_with(&features, config.sensitivity.threads);
        timing.predict = stage("stage.predict", started.elapsed());

        let mut class_counts: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for (&(cell, high), feature) in predictions.iter().zip(&features) {
            debug_assert_eq!(cell, feature.cell);
            let class =
                ModuleClass::infer(netlist.paths().resolve(netlist.cell(cell).path).segments());
            let entry = class_counts.entry(class.name().to_owned()).or_default();
            entry.1 += 1;
            if high {
                entry.0 += 1;
            }
        }
        let chip_xsect = crate::framework::scaled_chip_xsect(
            netlist,
            config.campaign.environment.let_value,
            config.memory_scale,
        );

        let injected_cells = injected_order.len();
        let baseline_cells = sample_clusters(&clustering, &config.sampling)?.len();
        let injections_saved = (baseline_cells * config.campaign.injections_per_cell)
            .saturating_sub(campaign.records.len());
        if let Some(metrics) = hooks.metrics {
            metrics.counter_add("pipeline.analyses", 1);
            metrics.gauge_set("pipeline.cells", netlist.cells().len() as f64);
            metrics.gauge_set("pipeline.clusters", clustering.clusters as f64);
            metrics.gauge_set("pipeline.sampled_cells", sample.len() as f64);
            metrics.gauge_set("pipeline.predictions", predictions.len() as f64);
            metrics.counter_add("active.rounds", rounds.len() as u64);
            metrics.counter_add("active.injections.total", campaign.records.len() as u64);
            metrics.counter_add("active.injections_saved", injections_saved as u64);
            let solver = &sensitivity_report.solver;
            metrics.counter_add(
                "svm.kernel_cache.hits",
                solver.kernel_cache_hits + warm_stats.kernel_cache_hits,
            );
            metrics.counter_add(
                "svm.kernel_cache.misses",
                solver.kernel_cache_misses + warm_stats.kernel_cache_misses,
            );
            metrics.gauge_set(
                "svm.kernel_cache.hit_rate",
                hit_rate(
                    solver.kernel_cache_hits + warm_stats.kernel_cache_hits,
                    solver.kernel_cache_misses + warm_stats.kernel_cache_misses,
                ),
            );
            metrics.observe("svm.smo_iterations", solver.iterations as f64);
            let predict_secs = timing.predict.as_secs_f64();
            let throughput = if predict_secs > 0.0 {
                predictions.len() as f64 / predict_secs
            } else {
                0.0
            };
            metrics.gauge_set("pipeline.predict_throughput_per_second", throughput);
        }

        Ok(ActiveAnalysis {
            analysis: Analysis {
                timing,
                clustering,
                sample,
                campaign,
                ser,
                sensitivity_report,
                classifier,
                predictions,
                class_counts,
                chip_xsect,
                features,
            },
            rounds,
            injected_cells,
            baseline_cells,
            injections_saved,
        })
    }
}

/// Labels campaign cells under a [`LabelRule`], in the given cell order.
///
/// This is the labeling step both pipelines share: the active loop calls
/// it in injection order (stable row positions for the warm-started
/// solver), and benchmarks call it to re-derive a one-shot analysis'
/// training labels for held-out evaluation.
pub fn label_cells(
    injected_order: &[CellId],
    campaign: &CampaignOutcome,
    clustering: &crate::clustering::Clustering,
    ser: &crate::ser::SerEvaluation,
    rule: LabelRule,
) -> Vec<(CellId, bool)> {
    let cell_stats = campaign.per_cell_stats();
    injected_order
        .iter()
        .map(|&cell| {
            let probability = cell_stats
                .get(&cell)
                .map(|s| s.probability())
                .unwrap_or(0.0);
            let sensitive = match rule {
                LabelRule::PerCell { min_probability } => probability >= min_probability,
                LabelRule::Blended => {
                    let cluster = clustering.cluster_of(cell);
                    let cluster_ser = ser.per_cluster[cluster].ser();
                    (probability + cluster_ser) / 2.0 >= ser.chip_ser.max(1e-9)
                }
            };
            (cell, sensitive)
        })
        .collect()
}

/// Cache hit rate in `[0, 1]` (0 when no lookups happened).
pub(crate) fn hit_rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

fn validate_active_config(active: &ActiveLearningConfig) -> Result<(), SsresfError> {
    if !(active.seed_fraction > 0.0 && active.seed_fraction <= 1.0) {
        return Err(SsresfError::Config(format!(
            "active seed_fraction {} outside (0, 1]",
            active.seed_fraction
        )));
    }
    if active.batch_size == 0 {
        return Err(SsresfError::Config("active batch_size is 0".into()));
    }
    if active.max_rounds == 0 {
        return Err(SsresfError::Config("active max_rounds is 0".into()));
    }
    if !(active.stability_threshold >= 0.0 && active.stability_threshold <= 1.0) {
        return Err(SsresfError::Config(format!(
            "active stability_threshold {} outside [0, 1]",
            active.stability_threshold
        )));
    }
    Ok(())
}
