//! # SSRESF — Sensitivity-aware Single-particle Radiation Effects Simulation Framework
//!
//! A Rust reproduction of *"SSRESF: Sensitivity-aware Single-particle
//! Radiation Effects Simulation Framework in SoC Platforms based on SVM
//! Algorithm"* (DAC 2024). The framework analyzes gate-level netlists for
//! single-event sensitivity:
//!
//! 1. [`clustering`] — Algorithm-1 grouping of cells by the Eq.-1
//!    hierarchical-path distance;
//! 2. [`sampling`] — equal-proportion random sampling within clusters;
//! 3. [`campaign`] — SET/SEU fault injection into a live logic simulation,
//!    with soft errors detected by golden-vs-faulty output-trace comparison
//!    and each injection fast-forwarded from golden-run checkpoints;
//! 4. [`ser`] — per-cluster and whole-chip soft-error rate (Eq. 2);
//! 5. [`sensitivity`] — SVM training on structural features and fast
//!    classification of every remaining node.
//!
//! The [`Ssresf`] facade runs the whole pipeline; substrates live in the
//! companion crates `ssresf-netlist`, `ssresf-sim`, `ssresf-radiation`,
//! `ssresf-mlcore` and `ssresf-socgen`.
//!
//! # Example
//!
//! ```no_run
//! use ssresf::{Ssresf, SsresfConfig};
//! use ssresf_socgen::{build_soc, SocConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let soc = build_soc(&SocConfig::table1()[0])?;
//! let netlist = soc.design.flatten()?;
//! let framework = Ssresf::new(
//!     SsresfConfig::default().with_memory_scale(soc.info.memory_scale_factor),
//! );
//! let analysis = framework.analyze(&netlist)?;
//! println!("chip SER = {:.4}", analysis.ser.chip_ser);
//! println!("SVM accuracy = {:.2}%", analysis.sensitivity_report.metrics.accuracy() * 100.0);
//! println!("speed-up = {:.1}x", analysis.timing.speedup());
//! # Ok(())
//! # }
//! ```

pub mod active;
pub mod campaign;
pub mod clustering;
pub mod error;
pub mod framework;
pub mod hardening;
pub mod mission;
pub mod progress;
pub mod report;
pub mod sampling;
pub mod sensitivity;
pub mod ser;
pub mod shard;
pub mod workload;

pub use active::{label_cells, ActiveAnalysis, ActiveLearningConfig, ActiveRound};
pub use campaign::{
    faults_for_cell, run_campaign, run_campaign_with, run_injection_jobs,
    run_injection_jobs_with_golden, CampaignConfig, CampaignOutcome, CampaignTelemetry,
    CellErrorStats, InjectionRecord,
};
pub use clustering::{
    cluster_cells, cluster_cells_reference, hier_distance, Clustering, ClusteringConfig,
};
pub use error::SsresfError;
pub use framework::{
    scaled_chip_xsect, Analysis, LabelRule, Ssresf, SsresfConfig, Timing, MAX_SPEEDUP,
};
pub use hardening::{
    run_differential_campaign, selective_harden, DifferentialOutcome, HardeningStrategy,
    MitigationKind, MitigationOutcome, MitigationPlan, SelectiveHardening,
};
pub use mission::{
    environment_of, mission_faults_for_cell, run_mission_campaign, run_mission_campaign_with,
    MissionOutcome, SegmentStats,
};
pub use progress::{CampaignProgress, Instrument, ProgressPhase, ProgressSink, WorkerUtilization};
pub use report::AnalysisSummary;
pub use sampling::{sample_clusters, ClusterSample, SamplingConfig};
pub use sensitivity::{
    train_sensitivity, SensitivityConfig, SensitivityReport, TrainedSensitivity,
};
pub use ser::{evaluate_ser, ClusterSer, SerEvaluation};
pub use shard::{
    campaign_jobs, merge_shard_outcomes, plan_shards, run_campaign_shard, run_sharded_campaign,
    ShardOutcome,
};
// Re-exported so downstream users can attach metrics without depending on
// the telemetry crate directly.
pub use ssresf_telemetry::{MetricsRegistry, Span};
pub use workload::{
    BatchOutcome, Checkpoint, Dut, EngineKind, GoldenRun, LaneOutcome, RunOutcome, Workload,
};
