//! Mission-profile fault campaigns: segment-aware injection over a
//! time-varying radiation environment.
//!
//! A [`MissionProfile`] partitions the exposure window into ordered
//! segments, each with its own [`ParticleEnvironment`]
//! (see `ssresf_radiation::mission`). [`run_mission_campaign_with`] drives
//! the shared injection engine ([`run_injection_jobs`]) over the whole
//! mission: each injection's strike cycle places it in a segment, and the
//! SET pulse width is sampled at that segment's LET. The outcome carries a
//! per-segment SER breakdown next to the ordinary campaign records.
//!
//! Determinism discipline: fault generation keeps the exact per-cell RNG
//! stream and draw order of the static campaign
//! ([`faults_for_cell`](crate::campaign::faults_for_cell)), so a
//! single-segment mission whose environment matches
//! [`CampaignConfig::environment`] is **bit-identical** to the static
//! campaign — and mission records are byte-identical across thread counts
//! and batch widths for the same reasons the static ones are.

use crate::campaign::{run_injection_jobs, CampaignConfig, CampaignOutcome};
use crate::error::SsresfError;
use crate::progress::Instrument;
use crate::workload::{Dut, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use ssresf_netlist::CellId;
use ssresf_radiation::{MissionProfile, ParticleEnvironment};
use ssresf_sim::{Fault, SetFault, SeuFault};

/// Per-segment injection statistics of a mission campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentStats {
    /// The segment's label, copied from the profile.
    pub label: String,
    /// First cycle of the segment (mission-absolute).
    pub start_cycle: u64,
    /// Segment length in cycles.
    pub duration_cycles: u64,
    /// Injections whose strike cycle fell in this segment.
    pub injections: usize,
    /// Of those, how many produced a soft error.
    pub soft_errors: usize,
}

impl SegmentStats {
    /// Observed soft-error rate of the segment (0 when it saw no
    /// injections).
    pub fn ser(&self) -> f64 {
        if self.injections == 0 {
            0.0
        } else {
            self.soft_errors as f64 / self.injections as f64
        }
    }
}

/// Outcome of a mission campaign: the ordinary campaign outcome plus the
/// per-segment SER breakdown.
#[derive(Debug, Clone)]
pub struct MissionOutcome {
    /// The underlying campaign outcome (records in job order).
    pub campaign: CampaignOutcome,
    /// Per-segment statistics, in mission order. Injection counts sum to
    /// `campaign.records.len()` exactly.
    pub segments: Vec<SegmentStats>,
}

impl MissionOutcome {
    /// Mission-wide soft-error rate (soft errors / injections).
    pub fn ser(&self) -> f64 {
        let total: usize = self.segments.iter().map(|s| s.injections).sum();
        if total == 0 {
            0.0
        } else {
            let errors: usize = self.segments.iter().map(|s| s.soft_errors).sum();
            errors as f64 / total as f64
        }
    }

    /// Serializes the per-segment breakdown as a JSON object.
    pub fn to_json(&self) -> ssresf_json::Value {
        use ssresf_json::Value;
        let segments: Vec<Value> = self
            .segments
            .iter()
            .map(|s| {
                ssresf_json::object([
                    ("label", Value::String(s.label.clone())),
                    ("start_cycle", Value::Number(s.start_cycle as f64)),
                    ("duration_cycles", Value::Number(s.duration_cycles as f64)),
                    ("injections", Value::Number(s.injections as f64)),
                    ("soft_errors", Value::Number(s.soft_errors as f64)),
                    ("ser", Value::Number(s.ser())),
                ])
            })
            .collect();
        ssresf_json::object([
            ("ser", Value::Number(self.ser())),
            ("segments", Value::Array(segments)),
        ])
    }
}

/// Generates the mission faults for one cell.
///
/// Identical per-cell RNG stream and draw order as
/// [`faults_for_cell`](crate::campaign::faults_for_cell): strike cycle
/// first (uniform over the whole mission), then the sub-cycle offset, then
/// — for combinational cells — one pulse-width draw at the LET of the
/// segment the strike landed in. `sample_width` consumes exactly one draw
/// regardless of LET, so segment boundaries never shift later draws.
pub fn mission_faults_for_cell(
    dut: &Dut<'_>,
    cell: CellId,
    config: &CampaignConfig,
    mission: &MissionProfile,
) -> Vec<Fault> {
    let mut rng = StdRng::seed_from_u64(
        config.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(cell.0) + 1)),
    );
    let info = dut.netlist().cell(cell);
    let total = mission.total_cycles();
    (0..config.injections_per_cell)
        .map(|_| {
            let cycle = rng.gen_range(0..total.max(1));
            let offset = rng.gen::<f64>() * 0.999;
            if info.kind.is_sequential() {
                Fault::Seu(SeuFault {
                    cell,
                    cycle,
                    offset,
                })
            } else {
                let segment = &mission.segments[mission.segment_at(cycle)];
                Fault::Set(SetFault {
                    net: info.output,
                    cycle,
                    offset,
                    width: config
                        .pulse
                        .sample_width(segment.environment.let_value, &mut rng),
                })
            }
        })
        .collect()
}

/// Buckets finished records into per-segment statistics.
pub(crate) fn segment_stats(
    mission: &MissionProfile,
    records: &[crate::campaign::InjectionRecord],
) -> Vec<SegmentStats> {
    let mut stats: Vec<SegmentStats> = mission
        .segments
        .iter()
        .enumerate()
        .map(|(i, s)| SegmentStats {
            label: s.label.clone(),
            start_cycle: mission.segment_start(i),
            duration_cycles: s.duration_cycles,
            injections: 0,
            soft_errors: 0,
        })
        .collect();
    for record in records {
        let idx = mission.segment_at(record.fault.cycle());
        stats[idx].injections += 1;
        if record.soft_error {
            stats[idx].soft_errors += 1;
        }
    }
    stats
}

/// [`run_mission_campaign_with`] without hooks.
///
/// # Errors
///
/// Propagates configuration and simulation failures.
pub fn run_mission_campaign(
    dut: &Dut<'_>,
    cells: &[CellId],
    config: &CampaignConfig,
    mission: &MissionProfile,
) -> Result<MissionOutcome, SsresfError> {
    run_mission_campaign_with(dut, cells, config, mission, &Instrument::default())
}

/// Runs a fault-injection campaign over `cells` under a mission profile.
///
/// `config.workload.run_cycles` is superseded by the mission's total
/// length; `config.environment` is superseded segment-by-segment by the
/// profile. Everything else (engine, threads, checkpointing, early stop,
/// batching) applies unchanged through the shared injection engine.
///
/// When `hooks.metrics` is attached, the per-segment breakdown is
/// published under deterministic `mission.*` counters:
/// `mission.segments`, `mission.cycles.total`, and per segment `i`
/// `mission.segment.i.injections` / `mission.segment.i.soft_errors`.
///
/// # Errors
///
/// Returns [`SsresfError::Config`] for an invalid mission profile (empty,
/// zero-duration segment, non-finite environment) or a zero
/// `injections_per_cell`, and propagates simulation failures.
pub fn run_mission_campaign_with(
    dut: &Dut<'_>,
    cells: &[CellId],
    config: &CampaignConfig,
    mission: &MissionProfile,
    hooks: &Instrument<'_>,
) -> Result<MissionOutcome, SsresfError> {
    mission
        .validate()
        .map_err(|e| SsresfError::Config(e.to_string()))?;
    if config.injections_per_cell == 0 {
        return Err(SsresfError::Config("injections_per_cell is 0".into()));
    }
    let effective = CampaignConfig {
        workload: Workload {
            reset_cycles: config.workload.reset_cycles,
            run_cycles: mission.total_cycles(),
        },
        ..*config
    };
    let jobs: Vec<(CellId, Fault)> = cells
        .iter()
        .flat_map(|&cell| {
            mission_faults_for_cell(dut, cell, config, mission)
                .into_iter()
                .map(move |f| (cell, f))
        })
        .collect();
    let campaign = run_injection_jobs(dut, jobs, &effective, hooks)?;
    let segments = segment_stats(mission, &campaign.records);
    if let Some(metrics) = hooks.metrics {
        record_mission_metrics(metrics, mission, &segments);
    }
    Ok(MissionOutcome { campaign, segments })
}

/// Publishes the per-segment breakdown as deterministic counters (PR 3
/// telemetry rules: no wall-clock quantities here, so the deterministic
/// JSON export stays byte-identical across runs of the same seed).
fn record_mission_metrics(
    metrics: &ssresf_telemetry::MetricsRegistry,
    mission: &MissionProfile,
    segments: &[SegmentStats],
) {
    metrics.counter_add("mission.segments", segments.len() as u64);
    metrics.counter_add("mission.cycles.total", mission.total_cycles());
    for (i, s) in segments.iter().enumerate() {
        metrics.counter_add(
            &format!("mission.segment.{i}.injections"),
            s.injections as u64,
        );
        metrics.counter_add(
            &format!("mission.segment.{i}.soft_errors"),
            s.soft_errors as u64,
        );
    }
}

/// Builds the [`ParticleEnvironment`] equivalent of a static campaign
/// config's environment, for expressing existing configs as single-segment
/// missions.
pub fn environment_of(config: &CampaignConfig) -> ParticleEnvironment {
    ParticleEnvironment::from_beam(config.environment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::workload::EngineKind;
    use ssresf_netlist::{CellKind, Design, FlatNetlist, ModuleBuilder, PortDir};
    use ssresf_radiation::MissionSegment;

    /// Counter + logic cloud: both sequential and combinational targets.
    fn mixed_netlist() -> FlatNetlist {
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("mix");
        let clk = mb.port("clk", PortDir::Input);
        let rst_n = mb.port("rst_n", PortDir::Input);
        let q0 = mb.port("q0", PortDir::Output);
        let q1 = mb.port("q1", PortDir::Output);
        let y = mb.port("y", PortDir::Output);
        let d0 = mb.net("d0");
        let d1 = mb.net("d1");
        mb.cell("u_inv", CellKind::Inv, &[q0], &[d0]).unwrap();
        mb.cell("u_xor", CellKind::Xor2, &[q0, q1], &[d1]).unwrap();
        mb.cell("u_and", CellKind::And2, &[q0, q1], &[y]).unwrap();
        mb.cell("u_ff0", CellKind::Dffr, &[clk, d0, rst_n], &[q0])
            .unwrap();
        mb.cell("u_ff1", CellKind::Dffr, &[clk, d1, rst_n], &[q1])
            .unwrap();
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        design.flatten().unwrap()
    }

    fn all_cells(flat: &FlatNetlist) -> Vec<CellId> {
        flat.iter_cells().map(|(id, _)| id).collect()
    }

    #[test]
    fn single_segment_mission_is_bit_identical_to_static_campaign() {
        let flat = mixed_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let cells = all_cells(&flat);
        let config = CampaignConfig {
            workload: Workload {
                reset_cycles: 2,
                run_cycles: 30,
            },
            injections_per_cell: 3,
            ..CampaignConfig::default()
        };
        let static_outcome = run_campaign(&dut, &cells, &config).unwrap();
        let mission = MissionProfile::single("static", 30, environment_of(&config)).unwrap();
        let mission_outcome = run_mission_campaign(&dut, &cells, &config, &mission).unwrap();
        assert_eq!(static_outcome.records, mission_outcome.campaign.records);
        assert_eq!(mission_outcome.segments.len(), 1);
        assert_eq!(
            mission_outcome.segments[0].injections,
            static_outcome.records.len()
        );
    }

    #[test]
    fn segment_totals_sum_to_campaign_totals() {
        let flat = mixed_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let cells = all_cells(&flat);
        let config = CampaignConfig {
            workload: Workload {
                reset_cycles: 2,
                run_cycles: 10,
            },
            injections_per_cell: 4,
            ..CampaignConfig::default()
        };
        let mission = MissionProfile::orbit_with_flare(25, 15).unwrap();
        let outcome = run_mission_campaign(&dut, &cells, &config, &mission).unwrap();
        let injections: usize = outcome.segments.iter().map(|s| s.injections).sum();
        let errors: usize = outcome.segments.iter().map(|s| s.soft_errors).sum();
        assert_eq!(injections, outcome.campaign.records.len());
        assert_eq!(errors, outcome.campaign.soft_errors());
        // Weighted segment SERs reproduce the mission SER exactly.
        let weighted: f64 = outcome
            .segments
            .iter()
            .map(|s| s.ser() * s.injections as f64)
            .sum::<f64>()
            / injections as f64;
        assert!((weighted - outcome.ser()).abs() < 1e-12);
    }

    #[test]
    fn mission_campaign_is_deterministic_across_threads_and_engines() {
        let flat = mixed_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let cells = all_cells(&flat);
        let config = CampaignConfig {
            workload: Workload {
                reset_cycles: 2,
                run_cycles: 10,
            },
            injections_per_cell: 3,
            engine: EngineKind::Levelized,
            ..CampaignConfig::default()
        };
        let mission = MissionProfile::orbit_with_flare(20, 12).unwrap();
        let one = run_mission_campaign(
            &dut,
            &cells,
            &CampaignConfig {
                threads: 1,
                ..config
            },
            &mission,
        )
        .unwrap();
        let four = run_mission_campaign(
            &dut,
            &cells,
            &CampaignConfig {
                threads: 4,
                ..config
            },
            &mission,
        )
        .unwrap();
        assert_eq!(one.campaign.records, four.campaign.records);
        assert_eq!(one.segments, four.segments);
    }

    #[test]
    fn invalid_missions_are_config_errors() {
        let flat = mixed_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let cells = all_cells(&flat);
        let config = CampaignConfig::default();
        let empty = MissionProfile {
            segments: Vec::new(),
        };
        assert!(matches!(
            run_mission_campaign(&dut, &cells, &config, &empty),
            Err(SsresfError::Config(_))
        ));
        let zero = MissionProfile {
            segments: vec![MissionSegment::new("z", 0, ParticleEnvironment::proton())],
        };
        assert!(matches!(
            run_mission_campaign(&dut, &cells, &config, &zero),
            Err(SsresfError::Config(_))
        ));
    }

    #[test]
    fn set_widths_follow_segment_let() {
        // A mission whose second segment has a much higher LET should
        // produce wider SET pulses there (nominal width grows with LET).
        let flat = mixed_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let config = CampaignConfig {
            injections_per_cell: 64,
            ..CampaignConfig::default()
        };
        let mission = MissionProfile::new(vec![
            MissionSegment::new("low", 50, ParticleEnvironment::proton()),
            MissionSegment::new("high", 50, ParticleEnvironment::heavy_ion()),
        ])
        .unwrap();
        let comb = flat.cell_by_name("u_and").unwrap();
        let faults = mission_faults_for_cell(&dut, comb, &config, &mission);
        let mut widths: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
        for fault in &faults {
            if let Fault::Set(f) = fault {
                widths[usize::from(f.cycle >= 50)].push(f.width);
            }
        }
        assert!(!widths[0].is_empty() && !widths[1].is_empty());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&widths[1]) > mean(&widths[0]));
    }
}
