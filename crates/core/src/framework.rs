//! The end-to-end SSRESF pipeline.
//!
//! [`Ssresf::analyze`] executes the full flow of the paper's Fig. 1 on one
//! netlist: clustering → equal-proportion sampling → fault injection and
//! simulation → SER evaluation → sensitive-node labeling → feature
//! engineering → SVM training → whole-netlist sensitivity prediction,
//! returning an [`Analysis`] with every intermediate artifact plus the
//! timing split that yields the paper's Table-III speed-up.

use crate::campaign::{run_campaign_with, CampaignConfig, CampaignOutcome};
use crate::clustering::{cluster_cells, Clustering, ClusteringConfig};
use crate::error::SsresfError;
use crate::progress::Instrument;
use crate::sampling::{sample_clusters, ClusterSample, SamplingConfig};
use crate::sensitivity::{
    train_sensitivity, SensitivityConfig, SensitivityReport, TrainedSensitivity,
};
use crate::ser::{evaluate_ser, SerEvaluation};
use serde::{Deserialize, Serialize};
use ssresf_netlist::{CellFeatures, CellId, FeatureExtractor, FlatNetlist, ModuleClass};
use ssresf_radiation::SoftErrorDatabase;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// How sampled cells are labeled for SVM training.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum LabelRule {
    /// A cell is sensitive when its observed per-cell soft-error
    /// probability reaches the threshold.
    PerCell {
        /// Minimum error probability, in `(0, 1]`.
        min_probability: f64,
    },
    /// The paper's rule: cluster-level SER ranking blended with the
    /// per-cell outcome. A cell is sensitive when
    /// `(cell_probability + cluster_SER) / 2` reaches the chip SER.
    #[default]
    Blended,
}

/// Complete framework configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SsresfConfig {
    /// Algorithm-1 clustering parameters.
    pub clustering: ClusteringConfig,
    /// Equal-proportion sampling parameters.
    pub sampling: SamplingConfig,
    /// Fault-injection campaign parameters.
    pub campaign: CampaignConfig,
    /// SVM pipeline parameters.
    pub sensitivity: SensitivityConfig,
    /// Statistical extrapolation factor for memory bit cells when reporting
    /// chip cross-sections (1.0 = none; see `ssresf-socgen`'s
    /// `SocInfo::memory_scale_factor`).
    pub memory_scale: f64,
    /// Sensitive-node labeling rule.
    pub labeling: LabelRule,
}

impl Default for SsresfConfig {
    fn default() -> Self {
        SsresfConfig {
            clustering: ClusteringConfig::default(),
            sampling: SamplingConfig::default(),
            campaign: CampaignConfig::default(),
            sensitivity: SensitivityConfig::default(),
            memory_scale: 1.0,
            labeling: LabelRule::default(),
        }
    }
}

impl SsresfConfig {
    /// A configuration with all defaults and the given memory scale.
    pub fn with_memory_scale(mut self, scale: f64) -> Self {
        self.memory_scale = scale;
        self
    }
}

/// Ceiling on the reported speed-up, keeping [`Timing::speedup`] finite
/// (and JSON reports parseable) when the prediction time rounds to zero.
pub const MAX_SPEEDUP: f64 = 1e9;

/// Wall-clock timing split of an analysis, broken down per pipeline stage.
///
/// The coarse quantities of the paper's Table III remain available through
/// [`simulation`](Timing::simulation), [`training`](Timing::training) and
/// [`prediction`](Timing::prediction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timing {
    /// Algorithm-1 clustering.
    pub clustering: Duration,
    /// Equal-proportion sampling.
    pub sampling: Duration,
    /// Golden (fault-free) run, including checkpointing.
    pub golden: Duration,
    /// All fault-injection runs.
    pub injections: Duration,
    /// SER evaluation (Eq. 2).
    pub ser: Duration,
    /// Feature extraction and labeling.
    pub features: Duration,
    /// SVM training (selection + search + fit + CV).
    pub svm_train: Duration,
    /// Whole-netlist prediction.
    pub predict: Duration,
}

impl Timing {
    /// Fault-injection simulation time (golden + all injections).
    pub fn simulation(&self) -> Duration {
        self.golden + self.injections
    }

    /// SVM training time.
    pub fn training(&self) -> Duration {
        self.svm_train
    }

    /// Whole-netlist prediction time.
    pub fn prediction(&self) -> Duration {
        self.predict
    }

    /// Sum of every stage.
    pub fn total(&self) -> Duration {
        self.clustering
            + self.sampling
            + self.golden
            + self.injections
            + self.ser
            + self.features
            + self.svm_train
            + self.predict
    }

    /// Simulation time over prediction time — the paper's speed-up metric,
    /// clamped to [`MAX_SPEEDUP`] so the result is always finite.
    pub fn speedup(&self) -> f64 {
        let s = self.simulation().as_secs_f64();
        let p = self.prediction().as_secs_f64();
        if p > 0.0 {
            (s / p).min(MAX_SPEEDUP)
        } else if s > 0.0 {
            MAX_SPEEDUP
        } else {
            1.0
        }
    }
}

/// Everything the pipeline produced.
#[derive(Debug)]
pub struct Analysis {
    /// Cluster assignment of every cell.
    pub clustering: Clustering,
    /// The fault-injection sample.
    pub sample: ClusterSample,
    /// Raw campaign records and golden run.
    pub campaign: CampaignOutcome,
    /// Per-cluster and chip SER (Eq. 2).
    pub ser: SerEvaluation,
    /// SVM training diagnostics (Table II / Figs. 5–6 material).
    pub sensitivity_report: SensitivityReport,
    /// The trained classifier.
    pub classifier: TrainedSensitivity,
    /// Predicted sensitivity of every cell in the netlist.
    pub predictions: Vec<(CellId, bool)>,
    /// `(high-sensitivity, total)` predicted counts per module class.
    pub class_counts: BTreeMap<String, (usize, usize)>,
    /// Chip-level `(SEU, SET)` cross-sections in cm² at the campaign LET,
    /// with memory bits extrapolated by the configured scale factor.
    pub chip_xsect: (f64, f64),
    /// Timing split.
    pub timing: Timing,
    /// Feature records of every cell, in cell-id order — computed once by
    /// the pipeline and cached here so downstream consumers (selective
    /// hardening, reporting) never rebuild the extractor.
    pub features: Vec<CellFeatures>,
}

impl Analysis {
    /// Fraction of nodes predicted highly sensitive in `class`.
    pub fn class_sensitive_fraction(&self, class: &str) -> f64 {
        match self.class_counts.get(class) {
            Some(&(high, total)) if total > 0 => high as f64 / total as f64,
            _ => 0.0,
        }
    }

    /// The cached feature record of `cell` (O(1); records are stored in
    /// cell-id order).
    pub fn features_of(&self, cell: CellId) -> &CellFeatures {
        let record = &self.features[cell.index()];
        debug_assert_eq!(record.cell, cell);
        record
    }
}

/// The SSRESF framework facade.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ssresf {
    config: SsresfConfig,
}

impl Ssresf {
    /// Creates a framework with the given configuration.
    pub fn new(config: SsresfConfig) -> Self {
        Ssresf { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SsresfConfig {
        &self.config
    }

    /// Runs the full pipeline on `netlist`.
    ///
    /// # Errors
    ///
    /// Propagates failures from every stage; notably
    /// [`SsresfError::Config`] for an invalid configuration (labeling
    /// threshold outside `(0, 1]`, non-finite or non-positive
    /// `memory_scale`) or when the campaign labels only one class (the
    /// workload or sample was too small to observe both sensitive and
    /// insensitive nodes).
    pub fn analyze(&self, netlist: &FlatNetlist) -> Result<Analysis, SsresfError> {
        self.analyze_with(netlist, &Instrument::default())
    }

    /// [`analyze`](Ssresf::analyze) with observability hooks attached.
    ///
    /// `hooks.metrics` receives a per-stage timing breakdown
    /// (`stage.clustering`, `stage.sampling`, `stage.golden`,
    /// `stage.injections`, `stage.ser`, `stage.features`,
    /// `stage.svm_train`, `stage.predict`), pipeline gauges (including the
    /// `pipeline.predict_throughput_per_second` prediction rate), the full
    /// campaign counter set, the SMO solver's kernel-cache counters
    /// (`svm.kernel_cache.hits` / `svm.kernel_cache.misses`) and an
    /// `svm.smo_iterations` histogram; `hooks.progress` receives campaign
    /// progress reports. Hooks never change results.
    ///
    /// # Errors
    ///
    /// Same as [`analyze`](Ssresf::analyze).
    pub fn analyze_with(
        &self,
        netlist: &FlatNetlist,
        hooks: &Instrument<'_>,
    ) -> Result<Analysis, SsresfError> {
        self.validate_config()?;
        let dut = crate::workload::Dut::from_conventions(netlist)?;
        let mut timing = Timing::default();
        let stage = |name: &str, elapsed: Duration| {
            if let Some(metrics) = hooks.metrics {
                metrics.timing_add(name, elapsed);
            }
            elapsed
        };

        // 1–2. Clustering and equal-proportion sampling.
        let started = Instant::now();
        let clustering = cluster_cells(netlist, &self.config.clustering)?;
        timing.clustering = stage("stage.clustering", started.elapsed());
        let started = Instant::now();
        let sample = sample_clusters(&clustering, &self.config.sampling)?;
        timing.sampling = stage("stage.sampling", started.elapsed());

        // 3. Fault injection and simulation. The campaign records its own
        // golden/injection split (and the campaign.* metrics).
        let campaign = run_campaign_with(&dut, &sample.all_cells(), &self.config.campaign, hooks)?;
        timing.golden = campaign.golden_time;
        timing.injections = campaign
            .simulation_time
            .saturating_sub(campaign.golden_time);

        // 4. SER evaluation (Eq. 2).
        let started = Instant::now();
        let ser = evaluate_ser(netlist, &clustering, &sample, &campaign)?;
        timing.ser = stage("stage.ser", started.elapsed());

        // 5–7. Feature engineering and SVM training on the sampled cells.
        // Per-cell error statistics are built once and reused, instead of
        // rescanning all records for every sampled cell. Per-cell feature
        // extraction is independent, so it fans out across the configured
        // worker threads with results kept in cell order.
        let started = Instant::now();
        let extractor = FeatureExtractor::new(netlist)?;
        let cell_ids: Vec<CellId> = netlist.iter_cells().map(|(id, _)| id).collect();
        let features =
            ssresf_mlcore::parallel_map(&cell_ids, self.config.sensitivity.threads, |_, &id| {
                extractor.extract_cell(id, Some(&campaign.golden_activity))
            });
        let cell_stats = campaign.per_cell_stats();
        let labels: Vec<(CellId, bool)> = sample
            .all_cells()
            .iter()
            .map(|&cell| {
                let probability = cell_stats
                    .get(&cell)
                    .map(|s| s.probability())
                    .unwrap_or(0.0);
                let sensitive = match self.config.labeling {
                    LabelRule::PerCell { min_probability } => probability >= min_probability,
                    LabelRule::Blended => {
                        let cluster = clustering.cluster_of(cell);
                        let cluster_ser = ser.per_cluster[cluster].ser();
                        (probability + cluster_ser) / 2.0 >= ser.chip_ser.max(1e-9)
                    }
                };
                (cell, sensitive)
            })
            .collect();
        timing.features = stage("stage.features", started.elapsed());
        let started = Instant::now();
        let (classifier, sensitivity_report) =
            train_sensitivity(&features, &labels, &self.config.sensitivity)?;
        timing.svm_train = stage("stage.svm_train", started.elapsed());

        // 8. Whole-netlist prediction (the fast path replacing simulation).
        let started = Instant::now();
        let predictions = classifier.classify_all_with(&features, self.config.sensitivity.threads);
        timing.predict = stage("stage.predict", started.elapsed());

        let mut class_counts: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for (&(cell, high), feature) in predictions.iter().zip(&features) {
            debug_assert_eq!(cell, feature.cell);
            let class =
                ModuleClass::infer(netlist.paths().resolve(netlist.cell(cell).path).segments());
            let entry = class_counts.entry(class.name().to_owned()).or_default();
            entry.1 += 1;
            if high {
                entry.0 += 1;
            }
        }

        // 9. Chip cross-sections at the campaign LET.
        let chip_xsect = scaled_chip_xsect(
            netlist,
            self.config.campaign.environment.let_value,
            self.config.memory_scale,
        );

        if let Some(metrics) = hooks.metrics {
            metrics.counter_add("pipeline.analyses", 1);
            metrics.gauge_set("pipeline.cells", netlist.cells().len() as f64);
            metrics.gauge_set("pipeline.clusters", clustering.clusters as f64);
            metrics.gauge_set("pipeline.sampled_cells", sample.len() as f64);
            metrics.gauge_set("pipeline.predictions", predictions.len() as f64);
            let solver = &sensitivity_report.solver;
            metrics.counter_add("svm.kernel_cache.hits", solver.kernel_cache_hits);
            metrics.counter_add("svm.kernel_cache.misses", solver.kernel_cache_misses);
            metrics.gauge_set(
                "svm.kernel_cache.hit_rate",
                crate::active::hit_rate(solver.kernel_cache_hits, solver.kernel_cache_misses),
            );
            metrics.observe("svm.smo_iterations", solver.iterations as f64);
            let predict_secs = timing.predict.as_secs_f64();
            let throughput = if predict_secs > 0.0 {
                predictions.len() as f64 / predict_secs
            } else {
                0.0
            };
            metrics.gauge_set("pipeline.predict_throughput_per_second", throughput);
        }

        Ok(Analysis {
            timing,
            clustering,
            sample,
            campaign,
            ser,
            sensitivity_report,
            classifier,
            predictions,
            class_counts,
            chip_xsect,
            features,
        })
    }

    /// Entry-point configuration validation shared by every analysis.
    pub(crate) fn validate_config(&self) -> Result<(), SsresfError> {
        if let LabelRule::PerCell { min_probability } = self.config.labeling {
            if !(min_probability > 0.0 && min_probability <= 1.0) {
                return Err(SsresfError::Config(format!(
                    "PerCell min_probability {min_probability} outside (0, 1]"
                )));
            }
        }
        if !self.config.memory_scale.is_finite() || self.config.memory_scale <= 0.0 {
            return Err(SsresfError::Config(format!(
                "memory_scale {} must be finite and positive",
                self.config.memory_scale
            )));
        }
        Ok(())
    }
}

/// Chip `(SEU, SET)` cross-sections with memory bits scaled by `mem_scale`.
pub fn scaled_chip_xsect(
    netlist: &FlatNetlist,
    let_value: ssresf_radiation::Let,
    mem_scale: f64,
) -> (f64, f64) {
    let db = SoftErrorDatabase::standard();
    let mut seu = 0.0;
    let mut set = 0.0;
    for (_, cell) in netlist.iter_cells() {
        let scale = if cell.kind.is_memory_bit() {
            mem_scale
        } else {
            1.0
        };
        seu += db.seu_cross_section(cell.kind, let_value) * scale;
        set += db.set_cross_section(cell.kind, let_value) * scale;
    }
    (seu, set)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing(simulation_ms: u64, prediction_ms: u64) -> Timing {
        Timing {
            golden: Duration::from_millis(simulation_ms / 2),
            injections: Duration::from_millis(simulation_ms - simulation_ms / 2),
            predict: Duration::from_millis(prediction_ms),
            ..Timing::default()
        }
    }

    #[test]
    fn timing_aggregates_preserve_split() {
        let t = Timing {
            clustering: Duration::from_millis(1),
            sampling: Duration::from_millis(2),
            golden: Duration::from_millis(3),
            injections: Duration::from_millis(4),
            ser: Duration::from_millis(5),
            features: Duration::from_millis(6),
            svm_train: Duration::from_millis(7),
            predict: Duration::from_millis(8),
        };
        assert_eq!(t.simulation(), Duration::from_millis(7));
        assert_eq!(t.training(), Duration::from_millis(7));
        assert_eq!(t.prediction(), Duration::from_millis(8));
        assert_eq!(t.total(), Duration::from_millis(36));
    }

    #[test]
    fn speedup_is_finite_and_clamped() {
        assert_eq!(timing(100, 10).speedup(), 10.0);
        // Zero prediction time no longer yields infinity.
        let s = timing(100, 0).speedup();
        assert!(s.is_finite());
        assert_eq!(s, MAX_SPEEDUP);
        // Degenerate all-zero timing reports parity, not NaN.
        assert_eq!(timing(0, 0).speedup(), 1.0);
        // An absurd but nonzero ratio is clamped too.
        let t = Timing {
            golden: Duration::from_secs(1_000_000),
            predict: Duration::from_nanos(1),
            ..Timing::default()
        };
        assert_eq!(t.speedup(), MAX_SPEEDUP);
    }

    fn tiny_netlist() -> FlatNetlist {
        use ssresf_netlist::{CellKind, Design, ModuleBuilder, PortDir};
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("ctr");
        let clk = mb.port("clk", PortDir::Input);
        let rst_n = mb.port("rst_n", PortDir::Input);
        let q0 = mb.port("q0", PortDir::Output);
        let nq = mb.net("nq");
        mb.cell("u_inv", CellKind::Inv, &[q0], &[nq]).unwrap();
        mb.cell("u_ff", CellKind::Dffr, &[clk, nq, rst_n], &[q0])
            .unwrap();
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        design.flatten().unwrap()
    }

    #[test]
    fn analyze_rejects_bad_label_threshold() {
        let netlist = tiny_netlist();
        for min_probability in [0.0, -0.25, 1.5, f64::NAN] {
            let config = SsresfConfig {
                labeling: LabelRule::PerCell { min_probability },
                ..SsresfConfig::default()
            };
            let err = Ssresf::new(config).analyze(&netlist).unwrap_err();
            assert!(
                matches!(err, SsresfError::Config(_)),
                "min_probability {min_probability} not rejected"
            );
        }
    }

    #[test]
    fn analyze_rejects_bad_memory_scale() {
        let netlist = tiny_netlist();
        for memory_scale in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let config = SsresfConfig::default().with_memory_scale(memory_scale);
            let err = Ssresf::new(config).analyze(&netlist).unwrap_err();
            assert!(
                matches!(err, SsresfError::Config(_)),
                "memory_scale {memory_scale} not rejected"
            );
        }
    }
}
