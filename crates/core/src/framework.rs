//! The end-to-end SSRESF pipeline.
//!
//! [`Ssresf::analyze`] executes the full flow of the paper's Fig. 1 on one
//! netlist: clustering → equal-proportion sampling → fault injection and
//! simulation → SER evaluation → sensitive-node labeling → feature
//! engineering → SVM training → whole-netlist sensitivity prediction,
//! returning an [`Analysis`] with every intermediate artifact plus the
//! timing split that yields the paper's Table-III speed-up.

use crate::campaign::{run_campaign, CampaignConfig, CampaignOutcome};
use crate::clustering::{cluster_cells, Clustering, ClusteringConfig};
use crate::error::SsresfError;
use crate::sampling::{sample_clusters, ClusterSample, SamplingConfig};
use crate::sensitivity::{
    train_sensitivity, SensitivityConfig, SensitivityReport, TrainedSensitivity,
};
use crate::ser::{evaluate_ser, SerEvaluation};
use serde::{Deserialize, Serialize};
use ssresf_netlist::{CellId, FeatureExtractor, FlatNetlist, ModuleClass};
use ssresf_radiation::SoftErrorDatabase;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// How sampled cells are labeled for SVM training.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum LabelRule {
    /// A cell is sensitive when its observed per-cell soft-error
    /// probability reaches the threshold.
    PerCell {
        /// Minimum error probability, in `(0, 1]`.
        min_probability: f64,
    },
    /// The paper's rule: cluster-level SER ranking blended with the
    /// per-cell outcome. A cell is sensitive when
    /// `(cell_probability + cluster_SER) / 2` reaches the chip SER.
    #[default]
    Blended,
}

/// Complete framework configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SsresfConfig {
    /// Algorithm-1 clustering parameters.
    pub clustering: ClusteringConfig,
    /// Equal-proportion sampling parameters.
    pub sampling: SamplingConfig,
    /// Fault-injection campaign parameters.
    pub campaign: CampaignConfig,
    /// SVM pipeline parameters.
    pub sensitivity: SensitivityConfig,
    /// Statistical extrapolation factor for memory bit cells when reporting
    /// chip cross-sections (1.0 = none; see `ssresf-socgen`'s
    /// `SocInfo::memory_scale_factor`).
    pub memory_scale: f64,
    /// Sensitive-node labeling rule.
    pub labeling: LabelRule,
}

impl Default for SsresfConfig {
    fn default() -> Self {
        SsresfConfig {
            clustering: ClusteringConfig::default(),
            sampling: SamplingConfig::default(),
            campaign: CampaignConfig::default(),
            sensitivity: SensitivityConfig::default(),
            memory_scale: 1.0,
            labeling: LabelRule::default(),
        }
    }
}

impl SsresfConfig {
    /// A configuration with all defaults and the given memory scale.
    pub fn with_memory_scale(mut self, scale: f64) -> Self {
        self.memory_scale = scale;
        self
    }
}

/// Wall-clock timing split of an analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timing {
    /// Fault-injection simulation time (golden + all injections).
    pub simulation: Duration,
    /// SVM training time (selection + search + fit + CV).
    pub training: Duration,
    /// Whole-netlist prediction time.
    pub prediction: Duration,
}

impl Timing {
    /// Simulation time over prediction time — the paper's speed-up metric.
    pub fn speedup(&self) -> f64 {
        let p = self.prediction.as_secs_f64();
        if p <= 0.0 {
            f64::INFINITY
        } else {
            self.simulation.as_secs_f64() / p
        }
    }
}

/// Everything the pipeline produced.
#[derive(Debug)]
pub struct Analysis {
    /// Cluster assignment of every cell.
    pub clustering: Clustering,
    /// The fault-injection sample.
    pub sample: ClusterSample,
    /// Raw campaign records and golden run.
    pub campaign: CampaignOutcome,
    /// Per-cluster and chip SER (Eq. 2).
    pub ser: SerEvaluation,
    /// SVM training diagnostics (Table II / Figs. 5–6 material).
    pub sensitivity_report: SensitivityReport,
    /// The trained classifier.
    pub classifier: TrainedSensitivity,
    /// Predicted sensitivity of every cell in the netlist.
    pub predictions: Vec<(CellId, bool)>,
    /// `(high-sensitivity, total)` predicted counts per module class.
    pub class_counts: BTreeMap<String, (usize, usize)>,
    /// Chip-level `(SEU, SET)` cross-sections in cm² at the campaign LET,
    /// with memory bits extrapolated by the configured scale factor.
    pub chip_xsect: (f64, f64),
    /// Timing split.
    pub timing: Timing,
}

impl Analysis {
    /// Fraction of nodes predicted highly sensitive in `class`.
    pub fn class_sensitive_fraction(&self, class: &str) -> f64 {
        match self.class_counts.get(class) {
            Some(&(high, total)) if total > 0 => high as f64 / total as f64,
            _ => 0.0,
        }
    }
}

/// The SSRESF framework facade.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ssresf {
    config: SsresfConfig,
}

impl Ssresf {
    /// Creates a framework with the given configuration.
    pub fn new(config: SsresfConfig) -> Self {
        Ssresf { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SsresfConfig {
        &self.config
    }

    /// Runs the full pipeline on `netlist`.
    ///
    /// # Errors
    ///
    /// Propagates failures from every stage; notably
    /// [`SsresfError::Config`] when the campaign labels only one class (the
    /// workload or sample was too small to observe both sensitive and
    /// insensitive nodes).
    pub fn analyze(&self, netlist: &FlatNetlist) -> Result<Analysis, SsresfError> {
        let dut = crate::workload::Dut::from_conventions(netlist)?;

        // 1–2. Clustering and equal-proportion sampling.
        let clustering = cluster_cells(netlist, &self.config.clustering)?;
        let sample = sample_clusters(&clustering, &self.config.sampling)?;

        // 3. Fault injection and simulation.
        let campaign = run_campaign(&dut, &sample.all_cells(), &self.config.campaign)?;

        // 4. SER evaluation (Eq. 2).
        let ser = evaluate_ser(netlist, &clustering, &sample, &campaign)?;

        // 5–7. Feature engineering and SVM training on the sampled cells.
        let extractor = FeatureExtractor::new(netlist)?;
        let features = extractor.extract(Some(&campaign.golden_activity));
        let labels: Vec<(CellId, bool)> = sample
            .all_cells()
            .iter()
            .map(|&cell| {
                let probability = campaign.cell_error_probability(cell).unwrap_or(0.0);
                let sensitive = match self.config.labeling {
                    LabelRule::PerCell { min_probability } => probability >= min_probability,
                    LabelRule::Blended => {
                        let cluster = clustering.cluster_of(cell);
                        let cluster_ser = ser.per_cluster[cluster].ser();
                        (probability + cluster_ser) / 2.0 >= ser.chip_ser.max(1e-9)
                    }
                };
                (cell, sensitive)
            })
            .collect();
        let (classifier, sensitivity_report) =
            train_sensitivity(&features, &labels, &self.config.sensitivity)?;

        // 8. Whole-netlist prediction (the fast path replacing simulation).
        let predict_started = Instant::now();
        let predictions = classifier.classify_all(&features);
        let prediction = predict_started.elapsed();

        let mut class_counts: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for (&(cell, high), feature) in predictions.iter().zip(&features) {
            debug_assert_eq!(cell, feature.cell);
            let class =
                ModuleClass::infer(netlist.paths().resolve(netlist.cell(cell).path).segments());
            let entry = class_counts.entry(class.name().to_owned()).or_default();
            entry.1 += 1;
            if high {
                entry.0 += 1;
            }
        }

        // 9. Chip cross-sections at the campaign LET.
        let chip_xsect = scaled_chip_xsect(
            netlist,
            self.config.campaign.environment.let_value,
            if self.config.memory_scale > 0.0 {
                self.config.memory_scale
            } else {
                1.0
            },
        );

        Ok(Analysis {
            timing: Timing {
                simulation: campaign.simulation_time,
                training: sensitivity_report.training_time,
                prediction,
            },
            clustering,
            sample,
            campaign,
            ser,
            sensitivity_report,
            classifier,
            predictions,
            class_counts,
            chip_xsect,
        })
    }
}

/// Chip `(SEU, SET)` cross-sections with memory bits scaled by `mem_scale`.
pub fn scaled_chip_xsect(
    netlist: &FlatNetlist,
    let_value: ssresf_radiation::Let,
    mem_scale: f64,
) -> (f64, f64) {
    let db = SoftErrorDatabase::standard();
    let mut seu = 0.0;
    let mut set = 0.0;
    for (_, cell) in netlist.iter_cells() {
        let scale = if cell.kind.is_memory_bit() {
            mem_scale
        } else {
            1.0
        };
        seu += db.seu_cross_section(cell.kind, let_value) * scale;
        set += db.set_cross_section(cell.kind, let_value) * scale;
    }
    (seu, set)
}
