//! Equal-proportion random sampling within clusters.
//!
//! SSRESF does not simulate every cell: each cluster contributes a fixed
//! fraction of its members to the fault-injection list, with a minimum
//! per-cluster sample so tiny clusters still get coverage.

use crate::clustering::Clustering;
use crate::error::SsresfError;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use ssresf_netlist::CellId;

/// Sampling configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Fraction of each cluster to sample, in `(0, 1]`.
    pub fraction: f64,
    /// Lower bound on samples per (nonempty) cluster.
    pub min_per_cluster: usize,
    /// RNG seed.
    pub seed: u64,
    /// Hard cap on the total sample size (`None` = uncapped). Per-cluster
    /// `ceil` rounding and `min_per_cluster` floors can push the sum past
    /// the intended budget; when they do, samples are trimmed one at a
    /// time from the cluster with the largest current sample — ties break
    /// toward the higher-indexed cluster — dropping each cluster's
    /// highest-id cells first. The cap wins over `min_per_cluster`.
    #[serde(default)]
    pub budget: Option<usize>,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            fraction: 0.2,
            min_per_cluster: 4,
            seed: 2,
            budget: None,
        }
    }
}

/// The fault-injection sample: selected cells per cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSample {
    /// Selected cells, one list per cluster (same order as the clustering).
    pub per_cluster: Vec<Vec<CellId>>,
}

impl ClusterSample {
    /// All sampled cells, flattened.
    pub fn all_cells(&self) -> Vec<CellId> {
        self.per_cluster.iter().flatten().copied().collect()
    }

    /// Total sample size.
    pub fn len(&self) -> usize {
        self.per_cluster.iter().map(Vec::len).sum()
    }

    /// Whether nothing was sampled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Draws the equal-proportion sample from every cluster.
///
/// # Errors
///
/// Returns [`SsresfError::Config`] for a fraction outside `(0, 1]`.
pub fn sample_clusters(
    clustering: &Clustering,
    config: &SamplingConfig,
) -> Result<ClusterSample, SsresfError> {
    if !(config.fraction > 0.0 && config.fraction <= 1.0) {
        return Err(SsresfError::Config(format!(
            "sampling fraction {} outside (0, 1]",
            config.fraction
        )));
    }
    let mut per_cluster = Vec::with_capacity(clustering.members.len());
    for (index, members) in clustering.members.iter().enumerate() {
        if members.is_empty() {
            per_cluster.push(Vec::new());
            continue;
        }
        // Each cluster draws from its own seeded stream (mirroring the
        // per-cell fault streams), so perturbing one cluster's membership
        // leaves every other cluster's sample unchanged.
        let mut rng = StdRng::seed_from_u64(
            config.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1)),
        );
        let want = ((members.len() as f64 * config.fraction).ceil() as usize)
            .max(config.min_per_cluster)
            .min(members.len());
        let mut pool = members.clone();
        pool.shuffle(&mut rng);
        pool.truncate(want);
        pool.sort();
        per_cluster.push(pool);
    }
    if let Some(budget) = config.budget {
        trim_to_budget(&mut per_cluster, budget);
    }
    Ok(ClusterSample { per_cluster })
}

/// Trims an over-budget draw back to `budget` cells: repeatedly drop one
/// cell from the cluster with the largest current sample, breaking size
/// ties toward the higher-indexed cluster. Cells within a cluster are
/// sorted ascending, so each trim removes the cluster's highest id.
fn trim_to_budget(per_cluster: &mut [Vec<CellId>], budget: usize) {
    let mut total: usize = per_cluster.iter().map(Vec::len).sum();
    while total > budget {
        let victim = per_cluster
            .iter()
            .enumerate()
            .max_by(|(ai, a), (bi, b)| a.len().cmp(&b.len()).then(ai.cmp(bi)))
            .map(|(i, _)| i)
            .expect("total > budget implies a nonempty cluster");
        per_cluster[victim].pop();
        total -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustering(sizes: &[usize]) -> Clustering {
        let mut members = Vec::new();
        let mut assignment = Vec::new();
        let mut next = 0u32;
        for (c, &size) in sizes.iter().enumerate() {
            let mut cluster = Vec::new();
            for _ in 0..size {
                cluster.push(CellId(next));
                assignment.push(c as u32);
                next += 1;
            }
            members.push(cluster);
        }
        Clustering {
            assignment,
            clusters: sizes.len(),
            members,
        }
    }

    #[test]
    fn samples_proportionally_with_minimum() {
        let c = clustering(&[100, 10, 2]);
        let sample = sample_clusters(
            &c,
            &SamplingConfig {
                fraction: 0.1,
                min_per_cluster: 4,
                seed: 1,
                budget: None,
            },
        )
        .unwrap();
        assert_eq!(sample.per_cluster[0].len(), 10); // 10% of 100
        assert_eq!(sample.per_cluster[1].len(), 4); // min kicks in
        assert_eq!(sample.per_cluster[2].len(), 2); // capped by cluster size
        assert_eq!(sample.len(), 16);
    }

    #[test]
    fn sampled_cells_belong_to_their_cluster() {
        let c = clustering(&[20, 20]);
        let sample = sample_clusters(&c, &SamplingConfig::default()).unwrap();
        for (cluster, cells) in sample.per_cluster.iter().enumerate() {
            for cell in cells {
                assert!(c.members[cluster].contains(cell));
            }
            // No duplicates.
            let mut sorted = cells.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), cells.len());
        }
    }

    #[test]
    fn full_fraction_takes_everything() {
        let c = clustering(&[7, 3]);
        let sample = sample_clusters(
            &c,
            &SamplingConfig {
                fraction: 1.0,
                min_per_cluster: 1,
                seed: 3,
                budget: None,
            },
        )
        .unwrap();
        assert_eq!(sample.len(), 10);
    }

    #[test]
    fn deterministic_under_seed() {
        let c = clustering(&[50]);
        let cfg = SamplingConfig::default();
        assert_eq!(
            sample_clusters(&c, &cfg).unwrap(),
            sample_clusters(&c, &cfg).unwrap()
        );
    }

    #[test]
    fn rejects_bad_fraction() {
        let c = clustering(&[5]);
        for fraction in [0.0, -0.5, 1.5] {
            assert!(sample_clusters(
                &c,
                &SamplingConfig {
                    fraction,
                    ..SamplingConfig::default()
                }
            )
            .is_err());
        }
    }

    #[test]
    fn clusters_sample_from_independent_streams() {
        // Perturbing one cluster's membership must not change any other
        // cluster's sample (per-cluster seeded streams).
        let base = clustering(&[30, 30, 30]);
        let cfg = SamplingConfig {
            fraction: 0.3,
            min_per_cluster: 2,
            seed: 7,
            budget: None,
        };
        let before = sample_clusters(&base, &cfg).unwrap();

        let mut perturbed = base.clone();
        perturbed.members[1].pop();
        let after = sample_clusters(&perturbed, &cfg).unwrap();

        assert_eq!(before.per_cluster[0], after.per_cluster[0]);
        assert_eq!(before.per_cluster[2], after.per_cluster[2]);
    }

    #[test]
    fn minimum_larger_than_every_cluster_takes_whole_clusters() {
        // A per-cluster minimum above the cluster size must cap at the
        // cluster, not panic or oversample.
        let c = clustering(&[2, 3, 1]);
        let sample = sample_clusters(
            &c,
            &SamplingConfig {
                fraction: 0.1,
                min_per_cluster: 10,
                seed: 5,
                budget: None,
            },
        )
        .unwrap();
        assert_eq!(sample.per_cluster[0].len(), 2);
        assert_eq!(sample.per_cluster[1].len(), 3);
        assert_eq!(sample.per_cluster[2].len(), 1);
    }

    #[test]
    fn budget_absorbs_ceil_rounding_drift() {
        // ceil(0.25 * 10) = 3 per cluster sums to 9; a budget of 8 must
        // trim exactly one cell, from the highest-indexed largest cluster.
        let c = clustering(&[10, 10, 10]);
        let sample = sample_clusters(
            &c,
            &SamplingConfig {
                fraction: 0.25,
                min_per_cluster: 1,
                seed: 9,
                budget: Some(8),
            },
        )
        .unwrap();
        assert_eq!(sample.len(), 8);
        assert_eq!(sample.per_cluster[0].len(), 3);
        assert_eq!(sample.per_cluster[1].len(), 3);
        assert_eq!(sample.per_cluster[2].len(), 2);
    }

    #[test]
    fn budget_tie_break_drops_higher_indexed_clusters_first() {
        let c = clustering(&[6, 6, 6]);
        let cfg = SamplingConfig {
            fraction: 0.5,
            min_per_cluster: 1,
            seed: 11,
            budget: Some(7),
        };
        let sample = sample_clusters(&c, &cfg).unwrap();
        // 3 + 3 + 3 = 9 trimmed to 7: cluster 2 loses first (tie toward
        // the higher index), then cluster 1, leaving 3/2/2.
        assert_eq!(
            sample.per_cluster.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![3, 2, 2]
        );
        // Untrimmed clusters keep exactly the unbudgeted draw, and each
        // trimmed cluster is a prefix of it (highest ids dropped first).
        let free = sample_clusters(
            &c,
            &SamplingConfig {
                budget: None,
                ..cfg
            },
        )
        .unwrap();
        assert_eq!(sample.per_cluster[0], free.per_cluster[0]);
        for cluster in 1..3 {
            assert_eq!(
                sample.per_cluster[cluster][..],
                free.per_cluster[cluster][..2]
            );
        }
        // Repeated draws are identical.
        assert_eq!(sample, sample_clusters(&c, &cfg).unwrap());
    }

    #[test]
    fn budget_larger_than_draw_changes_nothing() {
        let c = clustering(&[20, 20]);
        let free = sample_clusters(&c, &SamplingConfig::default()).unwrap();
        let capped = sample_clusters(
            &c,
            &SamplingConfig {
                budget: Some(1_000),
                ..SamplingConfig::default()
            },
        )
        .unwrap();
        assert_eq!(free, capped);
    }

    #[test]
    fn budget_wins_over_per_cluster_minimum() {
        let c = clustering(&[5, 5]);
        let sample = sample_clusters(
            &c,
            &SamplingConfig {
                fraction: 0.2,
                min_per_cluster: 4,
                seed: 13,
                budget: Some(3),
            },
        )
        .unwrap();
        assert_eq!(sample.len(), 3);
    }

    #[test]
    fn empty_clusters_stay_empty() {
        let c = clustering(&[0, 5]);
        let sample = sample_clusters(&c, &SamplingConfig::default()).unwrap();
        assert!(sample.per_cluster[0].is_empty());
        assert!(!sample.per_cluster[1].is_empty());
    }
}
