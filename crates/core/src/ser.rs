//! Soft-error-rate evaluation (paper §III-D, Eq. 2).

use crate::campaign::CampaignOutcome;
use crate::clustering::Clustering;
use crate::error::SsresfError;
use crate::sampling::ClusterSample;
use serde::{Deserialize, Serialize};
use ssresf_netlist::{FlatNetlist, ModuleClass};
use std::collections::BTreeMap;

/// Per-cluster SER evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSer {
    /// Cluster index.
    pub cluster: usize,
    /// Total cells in the cluster.
    pub cells: usize,
    /// Cells sampled for injection.
    pub sampled: usize,
    /// Injections performed.
    pub injections: usize,
    /// Soft errors observed.
    pub errors: usize,
}

impl ClusterSer {
    /// The cluster's soft-error rate: observed errors over injections
    /// (0 when nothing was injected).
    pub fn ser(&self) -> f64 {
        if self.injections == 0 {
            0.0
        } else {
            self.errors as f64 / self.injections as f64
        }
    }
}

/// Chip-level SER evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SerEvaluation {
    /// Per-cluster results, by cluster index.
    pub per_cluster: Vec<ClusterSer>,
    /// Whole-chip SER per paper Eq. 2: the cluster SERs weighted by cluster
    /// cell counts.
    pub chip_ser: f64,
    /// SER per inferred module class (cpu / bus / memory / other).
    pub per_module_class: BTreeMap<String, f64>,
}

impl SerEvaluation {
    /// Cluster indices sorted by descending SER (the paper's sensitive-
    /// cluster ranking).
    pub fn ranked_clusters(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.per_cluster.len()).collect();
        order.sort_by(|&a, &b| {
            self.per_cluster[b]
                .ser()
                .partial_cmp(&self.per_cluster[a].ser())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        order
    }
}

/// Evaluates SER from a campaign outcome.
///
/// # Errors
///
/// Returns [`SsresfError::Config`] when the sample shape mismatches the
/// clustering.
pub fn evaluate_ser(
    netlist: &FlatNetlist,
    clustering: &Clustering,
    sample: &ClusterSample,
    outcome: &CampaignOutcome,
) -> Result<SerEvaluation, SsresfError> {
    if sample.per_cluster.len() != clustering.members.len() {
        return Err(SsresfError::Config(format!(
            "sample has {} clusters, clustering has {}",
            sample.per_cluster.len(),
            clustering.members.len()
        )));
    }

    let mut per_cluster: Vec<ClusterSer> = clustering
        .members
        .iter()
        .enumerate()
        .map(|(i, members)| ClusterSer {
            cluster: i,
            cells: members.len(),
            sampled: sample.per_cluster[i].len(),
            injections: 0,
            errors: 0,
        })
        .collect();

    let mut class_counts: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for record in &outcome.records {
        let cluster = clustering.cluster_of(record.cell);
        per_cluster[cluster].injections += 1;
        if record.soft_error {
            per_cluster[cluster].errors += 1;
        }
        let class = ModuleClass::infer(
            netlist
                .paths()
                .resolve(netlist.cell(record.cell).path)
                .segments(),
        );
        let entry = class_counts.entry(class.name().to_owned()).or_default();
        entry.0 += 1;
        if record.soft_error {
            entry.1 += 1;
        }
    }

    // Paper Eq. 2: SER_chip = Σ |cluster_i| · SER_i / Σ |cluster_i|. The sum
    // runs over clusters with at least one injection: a cluster that was
    // never sampled has no SER estimate, and counting it as zero would skew
    // the chip SER downward (empty clusters carry zero weight either way).
    let measured = || per_cluster.iter().filter(|c| c.injections > 0);
    let measured_cells: usize = measured().map(|c| c.cells).sum();
    let chip_ser = if measured_cells == 0 {
        0.0
    } else {
        measured().map(|c| c.cells as f64 * c.ser()).sum::<f64>() / measured_cells as f64
    };

    let per_module_class = class_counts
        .into_iter()
        .map(|(class, (inj, err))| {
            (
                class,
                if inj == 0 {
                    0.0
                } else {
                    err as f64 / inj as f64
                },
            )
        })
        .collect();

    Ok(SerEvaluation {
        per_cluster,
        chip_ser,
        per_module_class,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::InjectionRecord;
    use ssresf_netlist::{CellId, CellKind, Design, ModuleBuilder, PortDir};
    use ssresf_sim::{Fault, SeuFault};

    fn tiny_netlist() -> FlatNetlist {
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("t");
        let clk = mb.port("clk", PortDir::Input);
        let a = mb.port("a", PortDir::Input);
        let y = mb.port("y", PortDir::Output);
        let w = mb.net("w");
        mb.cell("u0", CellKind::Inv, &[a], &[w]).unwrap();
        mb.cell("u1", CellKind::Dff, &[clk, w], &[y]).unwrap();
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        design.flatten().unwrap()
    }

    fn record(cell: u32, soft_error: bool) -> InjectionRecord {
        InjectionRecord {
            cell: CellId(cell),
            fault: Fault::Seu(SeuFault {
                cell: CellId(cell),
                cycle: 0,
                offset: 0.0,
            }),
            soft_error,
            divergences: usize::from(soft_error),
        }
    }

    fn outcome(records: Vec<InjectionRecord>) -> CampaignOutcome {
        CampaignOutcome {
            golden: ssresf_sim::CycleTrace::new(vec![]),
            golden_activity: vec![],
            records,
            simulation_time: std::time::Duration::ZERO,
            golden_time: std::time::Duration::ZERO,
            total_work: 0,
            telemetry: crate::campaign::CampaignTelemetry::default(),
        }
    }

    #[test]
    fn eq2_weights_cluster_sers_by_size() {
        let netlist = tiny_netlist();
        let clustering = Clustering {
            assignment: vec![0, 1],
            clusters: 2,
            members: vec![vec![CellId(0)], vec![CellId(1)]],
        };
        let sample = ClusterSample {
            per_cluster: vec![vec![CellId(0)], vec![CellId(1)]],
        };
        // Cluster 0: SER 1.0 (1/1); cluster 1: SER 0.0 (0/1).
        let out = outcome(vec![record(0, true), record(1, false)]);
        let eval = evaluate_ser(&netlist, &clustering, &sample, &out).unwrap();
        assert_eq!(eval.per_cluster[0].ser(), 1.0);
        assert_eq!(eval.per_cluster[1].ser(), 0.0);
        // Equal cluster sizes -> chip SER = 0.5.
        assert!((eval.chip_ser - 0.5).abs() < 1e-12);
        assert_eq!(eval.ranked_clusters(), vec![0, 1]);
    }

    #[test]
    fn multiple_injections_average_within_cluster() {
        let netlist = tiny_netlist();
        let clustering = Clustering {
            assignment: vec![0, 0],
            clusters: 1,
            members: vec![vec![CellId(0), CellId(1)]],
        };
        let sample = ClusterSample {
            per_cluster: vec![vec![CellId(0), CellId(1)]],
        };
        let out = outcome(vec![
            record(0, true),
            record(0, false),
            record(1, false),
            record(1, false),
        ]);
        let eval = evaluate_ser(&netlist, &clustering, &sample, &out).unwrap();
        assert_eq!(eval.per_cluster[0].injections, 4);
        assert_eq!(eval.per_cluster[0].errors, 1);
        assert!((eval.chip_ser - 0.25).abs() < 1e-12);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let netlist = tiny_netlist();
        let clustering = Clustering {
            assignment: vec![0, 0],
            clusters: 1,
            members: vec![vec![CellId(0), CellId(1)]],
        };
        let sample = ClusterSample {
            per_cluster: vec![vec![], vec![]],
        };
        assert!(evaluate_ser(&netlist, &clustering, &sample, &outcome(vec![])).is_err());
    }

    #[test]
    fn empty_cluster_contributes_nothing_and_never_nans() {
        let netlist = tiny_netlist();
        // Cluster 1 is empty — a degenerate but legal clustering outcome.
        let clustering = Clustering {
            assignment: vec![0, 0],
            clusters: 2,
            members: vec![vec![CellId(0), CellId(1)], vec![]],
        };
        let sample = ClusterSample {
            per_cluster: vec![vec![CellId(0)], vec![]],
        };
        let out = outcome(vec![record(0, true), record(0, false)]);
        let eval = evaluate_ser(&netlist, &clustering, &sample, &out).unwrap();
        assert!(eval.chip_ser.is_finite());
        assert_eq!(eval.per_cluster[1].cells, 0);
        assert_eq!(eval.per_cluster[1].ser(), 0.0);
        // Chip SER is exactly the measured cluster's SER.
        assert!((eval.chip_ser - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unsampled_cluster_does_not_skew_chip_ser() {
        let netlist = tiny_netlist();
        // Cluster 1 has cells but zero sampled cells, hence zero injections.
        let clustering = Clustering {
            assignment: vec![0, 1],
            clusters: 2,
            members: vec![vec![CellId(0)], vec![CellId(1)]],
        };
        let sample = ClusterSample {
            per_cluster: vec![vec![CellId(0)], vec![]],
        };
        let out = outcome(vec![record(0, true)]);
        let eval = evaluate_ser(&netlist, &clustering, &sample, &out).unwrap();
        assert_eq!(eval.per_cluster[1].injections, 0);
        // Eq. 2 averages over measured clusters only: counting the
        // unsampled cluster as SER 0 would halve the chip SER.
        assert!((eval.chip_ser - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_cluster_chip_ser_equals_cluster_ser() {
        let netlist = tiny_netlist();
        let clustering = Clustering {
            assignment: vec![0, 0],
            clusters: 1,
            members: vec![vec![CellId(0), CellId(1)]],
        };
        let sample = ClusterSample {
            per_cluster: vec![vec![CellId(0), CellId(1)]],
        };
        let out = outcome(vec![
            record(0, true),
            record(0, false),
            record(1, true),
            record(1, false),
        ]);
        let eval = evaluate_ser(&netlist, &clustering, &sample, &out).unwrap();
        assert!((eval.chip_ser - eval.per_cluster[0].ser()).abs() < 1e-12);
        assert!((eval.chip_ser - 0.5).abs() < 1e-12);
        assert_eq!(eval.ranked_clusters(), vec![0]);
    }

    #[test]
    fn empty_campaign_yields_zero_ser() {
        let netlist = tiny_netlist();
        let clustering = Clustering {
            assignment: vec![0, 0],
            clusters: 1,
            members: vec![vec![CellId(0), CellId(1)]],
        };
        let sample = ClusterSample {
            per_cluster: vec![vec![]],
        };
        let eval = evaluate_ser(&netlist, &clustering, &sample, &outcome(vec![])).unwrap();
        assert_eq!(eval.chip_ser, 0.0);
        assert!(eval.per_module_class.is_empty());
    }
}
