//! Driving a device-under-test through its workload.
//!
//! SSRESF designs follow two conventions: the clock input is named `clk`
//! and the active-low reset `rst_n`. A [`Dut`] wraps a flat netlist, builds
//! either simulation engine on demand, and runs the standard sequence —
//! reset, post-reset memory-image load, then `run_cycles` of execution —
//! sampling all primary outputs each cycle.

use crate::error::SsresfError;
use serde::{Deserialize, Serialize};
use ssresf_netlist::{FlatNetlist, NetId};
use ssresf_sim::{
    BitParallelEngine, CycleTrace, Engine, EngineState, EngineTelemetry, EventDrivenEngine, Fault,
    LaneMask, LevelizedEngine, Logic, SetFault, SeuFault, WORD_LANES,
};
use std::collections::VecDeque;

/// Which simulation engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineKind {
    /// [`EventDrivenEngine`] — the VCS stand-in.
    EventDriven,
    /// [`LevelizedEngine`] — the OSS-CVC stand-in.
    Levelized,
}

impl EngineKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::EventDriven => "event-driven",
            EngineKind::Levelized => "levelized",
        }
    }
}

/// Workload length parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// Cycles with reset asserted.
    pub reset_cycles: u64,
    /// Post-reset cycles simulated and observed.
    pub run_cycles: u64,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            reset_cycles: 3,
            run_cycles: 120,
        }
    }
}

/// One simulation run's outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Per-cycle primary-output samples (post-reset cycles only).
    pub trace: CycleTrace,
    /// Per-net toggle activity per cycle (for the activity feature).
    pub activity_per_cycle: Vec<f64>,
    /// Engine work proxy (events processed / cells evaluated).
    pub work: u64,
    /// Engine-level event counters for this run (resumed runs count only
    /// the resumed portion, mirroring [`RunOutcome::work`]).
    pub engine: EngineTelemetry,
    /// The golden checkpoint cycle this run fast-forwarded from, if any.
    pub resumed_from: Option<u64>,
    /// Whether early stop truncated this run's simulated tail.
    pub early_stopped: bool,
}

/// Per-fault observation of one lane of a batched run; field-compatible
/// with the observations a scalar [`Dut::resume`] run yields through a
/// golden-trace diff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneOutcome {
    /// Whether the lane's primary outputs ever differed from the golden
    /// lane.
    pub soft_error: bool,
    /// Number of (cycle, signal) divergences against the golden lane.
    pub divergences: usize,
}

/// Outcome of one bit-parallel batched run ([`Dut::run_batch`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// One observation per scheduled fault, in scheduling order.
    pub lanes: Vec<LaneOutcome>,
    /// Word evaluations spent on the batch (excluding any fast-forwarded
    /// prefix); one word evaluation covers a cell for all lanes.
    pub work: u64,
    /// Engine-level counters for the batched portion of the run.
    pub engine: EngineTelemetry,
    /// The golden checkpoint cycle the batch fast-forwarded from, if any.
    pub resumed_from: Option<u64>,
    /// Whether early stop truncated the batch's simulated tail.
    pub early_stopped: bool,
}

/// Per-fault observation of a queued batched run
/// ([`Dut::run_batch_queue`]): a [`LaneOutcome`] plus the fast-forward and
/// truncation facts of the sweep segment that carried the fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedFaultOutcome {
    /// Whether the lane's primary outputs ever differed from the golden
    /// lane.
    pub soft_error: bool,
    /// Number of (cycle, signal) divergences against the golden lane.
    pub divergences: usize,
    /// The golden checkpoint cycle the fault's sweep fast-forwarded from.
    pub resumed_from: Option<u64>,
    /// Whether the lane retired (verdict final) before the workload end.
    pub early_stopped: bool,
}

/// Outcome of one queued bit-parallel run ([`Dut::run_batch_queue`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchQueueOutcome {
    /// One observation per queued fault, in input order. `None` only when
    /// the run was cancelled before the fault's verdict became final.
    pub faults: Vec<Option<QueuedFaultOutcome>>,
    /// Word evaluations spent across all sweeps (excluding fast-forwarded
    /// prefixes).
    pub work: u64,
    /// Aggregated engine-level counters over all sweeps.
    pub engine: EngineTelemetry,
    /// Faults carried per sweep, including mid-sweep refills (the batch
    /// occupancy histogram input).
    pub occupancy: Vec<u64>,
    /// Mid-sweep lane refills performed (retired lanes rewritten with a
    /// fresh pending fault).
    pub refills: u64,
    /// Whether a cancellation check stopped the run before every queued
    /// fault had a final verdict.
    pub cancelled: bool,
}

/// A golden-run engine snapshot taken at a post-reset cycle boundary.
///
/// Restoring it fast-forwards a faulty run past the cycles the golden run
/// already simulated; see [`Dut::resume`].
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Post-reset cycles completed when the snapshot was taken (0 = right
    /// after reset and memory-image load, before the first workload cycle).
    pub cycle: u64,
    state: EngineState,
}

impl Checkpoint {
    /// Rebuilds a checkpoint from its parts — used by the serve layer to
    /// rehydrate cached golden runs from disk. `cycle` must be the
    /// post-reset cycle the snapshot was taken at, or fast-forwarding
    /// through it will silently diverge.
    pub fn new(cycle: u64, state: EngineState) -> Self {
        Checkpoint { cycle, state }
    }

    /// The captured engine state.
    pub fn state(&self) -> &EngineState {
        &self.state
    }
}

/// A golden (fault-free) run plus the checkpoints recorded along it.
#[derive(Debug, Clone)]
pub struct GoldenRun {
    /// The golden run's trace, activity and work.
    pub outcome: RunOutcome,
    /// Snapshots in strictly increasing cycle order; empty when
    /// checkpointing was disabled.
    pub checkpoints: Vec<Checkpoint>,
}

impl GoldenRun {
    /// The latest checkpoint at or before `cycle`.
    pub fn nearest_checkpoint(&self, cycle: u64) -> Option<&Checkpoint> {
        let idx = self.checkpoints.partition_point(|c| c.cycle <= cycle);
        idx.checked_sub(1).map(|i| &self.checkpoints[i])
    }

    /// The checkpoint taken exactly at `cycle`, if any.
    pub fn checkpoint_at(&self, cycle: u64) -> Option<&Checkpoint> {
        self.checkpoints
            .binary_search_by_key(&cycle, |c| c.cycle)
            .ok()
            .map(|i| &self.checkpoints[i])
    }
}

/// A device-under-test: netlist plus its clock/reset conventions.
#[derive(Debug, Clone, Copy)]
pub struct Dut<'a> {
    netlist: &'a FlatNetlist,
    clock: NetId,
    reset: Option<NetId>,
}

impl<'a> Dut<'a> {
    /// Wraps a netlist using the `clk`/`rst_n` naming conventions.
    ///
    /// # Errors
    ///
    /// Returns [`SsresfError::MissingNet`] when no `clk` input exists. A
    /// missing `rst_n` is tolerated (purely combinational DUTs).
    pub fn from_conventions(netlist: &'a FlatNetlist) -> Result<Self, SsresfError> {
        let clock = netlist
            .net_by_name("clk")
            .ok_or_else(|| SsresfError::MissingNet("clk".into()))?;
        let reset = netlist.net_by_name("rst_n");
        Ok(Dut {
            netlist,
            clock,
            reset,
        })
    }

    /// The wrapped netlist.
    pub fn netlist(&self) -> &'a FlatNetlist {
        self.netlist
    }

    /// The clock net.
    pub fn clock(&self) -> NetId {
        self.clock
    }

    /// Runs the workload with the given faults (whose cycles are relative
    /// to the first post-reset cycle).
    ///
    /// # Errors
    ///
    /// Propagates engine construction failures.
    pub fn run(
        &self,
        kind: EngineKind,
        workload: &Workload,
        faults: &[Fault],
    ) -> Result<RunOutcome, SsresfError> {
        match kind {
            EngineKind::EventDriven => {
                let engine = EventDrivenEngine::new(self.netlist, self.clock)?;
                self.drive(engine, workload, faults, |e| e.events_processed())
            }
            EngineKind::Levelized => {
                let engine = LevelizedEngine::new(self.netlist, self.clock)?;
                self.drive(engine, workload, faults, |e| e.cells_evaluated())
            }
        }
    }

    /// Runs the fault-free workload, snapshotting engine state every
    /// `interval` post-reset cycles — plus once right after reset and
    /// memory-image load, before the first workload cycle. An `interval`
    /// of 0 disables checkpointing (the returned run has no checkpoints).
    ///
    /// # Errors
    ///
    /// Propagates engine construction failures.
    pub fn run_golden_with_checkpoints(
        &self,
        kind: EngineKind,
        workload: &Workload,
        interval: u64,
    ) -> Result<GoldenRun, SsresfError> {
        match kind {
            EngineKind::EventDriven => {
                let engine = EventDrivenEngine::new(self.netlist, self.clock)?;
                self.drive_golden(engine, workload, interval, |e| e.events_processed())
            }
            EngineKind::Levelized => {
                let engine = LevelizedEngine::new(self.netlist, self.clock)?;
                self.drive_golden(engine, workload, interval, |e| e.cells_evaluated())
            }
        }
    }

    /// Re-runs the workload with `faults`, fast-forwarding over the golden
    /// prefix: the engine restores the latest golden checkpoint at or
    /// before the earliest fault cycle and simulates only the remaining
    /// cycles, with the skipped trace prefix copied from the golden run
    /// (bit-identical by determinism — the fault has not fired yet).
    ///
    /// With `early_stop`, the run also terminates at the first golden
    /// checkpoint boundary past the last fault cycle where the engine
    /// state has re-converged with the golden run; the remaining rows are
    /// filled from the golden trace, which the convergence check proves
    /// identical. Either way the returned trace is bit-identical to a
    /// from-scratch [`run`](Dut::run) with the same faults.
    /// [`RunOutcome::work`] counts only the work of the resumed portion,
    /// and [`RunOutcome::activity_per_cycle`] covers the golden prefix
    /// plus the simulated suffix.
    ///
    /// Falls back to a from-scratch [`run`](Dut::run) when `golden` holds
    /// no checkpoints.
    ///
    /// # Errors
    ///
    /// Propagates engine construction failures.
    pub fn resume(
        &self,
        kind: EngineKind,
        workload: &Workload,
        faults: &[Fault],
        golden: &GoldenRun,
        early_stop: bool,
    ) -> Result<RunOutcome, SsresfError> {
        let first_fault = faults.iter().map(Fault::cycle).min().unwrap_or(0);
        let Some(start) = golden.nearest_checkpoint(first_fault) else {
            return self.run(kind, workload, faults);
        };
        match kind {
            EngineKind::EventDriven => {
                let engine = EventDrivenEngine::new(self.netlist, self.clock)?;
                self.drive_resumed(engine, workload, faults, golden, start, early_stop, |e| {
                    e.events_processed()
                })
            }
            EngineKind::Levelized => {
                let engine = LevelizedEngine::new(self.netlist, self.clock)?;
                self.drive_resumed(engine, workload, faults, golden, start, early_stop, |e| {
                    e.cells_evaluated()
                })
            }
        }
    }

    /// Runs up to `W * 64 - 1` faulty instances in one bit-parallel sweep:
    /// lane 0 replays the golden run, lane `i + 1` carries `faults[i]`,
    /// and the whole batch shares one netlist evaluation per cycle. `W` is
    /// the lane-word chunk count (1/4/8 for 64/256/512 lanes).
    ///
    /// Per-lane observations are bit-identical to what a scalar
    /// [`Dut::resume`] with the single fault would yield through a
    /// golden-trace diff — same soft-error verdicts, same divergence
    /// counts. Like [`Dut::resume`], the batch fast-forwards from the
    /// latest golden checkpoint at or before the earliest fault cycle
    /// (the checkpoints must come from a levelized golden run), and with
    /// `early_stop` it terminates at the first checkpoint boundary past
    /// the last fault cycle where *every* lane has re-converged with the
    /// golden run. The early-stop gate waits for the **latest** fault
    /// cycle in the batch, so mixing early- and late-cycle faults can
    /// never truncate a later fault's injection window (the regression
    /// test for this lives in the campaign module).
    ///
    /// # Errors
    ///
    /// Propagates engine construction failures.
    ///
    /// # Panics
    ///
    /// Panics when `faults` is empty or exceeds `W * 64 - 1`, when
    /// `golden` does not cover `workload.run_cycles`, or if the golden
    /// lane ever disagrees with the golden trace (an engine bug, never
    /// silent data corruption).
    pub fn run_batch<const W: usize>(
        &self,
        workload: &Workload,
        faults: &[Fault],
        golden: &GoldenRun,
        early_stop: bool,
    ) -> Result<BatchOutcome, SsresfError> {
        let lanes = W * WORD_LANES;
        assert!(
            (1..lanes).contains(&faults.len()),
            "a batch carries 1..={} faults, got {}",
            lanes - 1,
            faults.len()
        );
        let golden_rows = &golden.outcome.trace.rows;
        assert_eq!(
            golden_rows.len(),
            workload.run_cycles as usize,
            "golden trace does not cover the workload"
        );
        let mut engine = BitParallelEngine::<W>::new(self.netlist, self.clock)?;

        let first_fault = faults.iter().map(Fault::cycle).min().unwrap_or(0);
        let resumed_from = match golden.nearest_checkpoint(first_fault) {
            Some(start) => {
                engine.restore(start.state());
                Some(start.cycle)
            }
            None => {
                self.setup(&mut engine, workload);
                None
            }
        };
        let resumed_at = engine.word_evals();
        let telemetry_base = engine.telemetry();

        for (i, fault) in faults.iter().enumerate() {
            engine.schedule_fault_in_lane(i + 1, self.shift_fault(workload, fault));
        }

        let (outputs, _) = self.observed_outputs();
        // Lanes carrying faults (lane 0 stays golden).
        let fault_mask = LaneMask::<W>::fault_lanes(faults.len());
        let mut divergences = vec![0usize; faults.len()];
        let last_fault = faults.iter().map(Fault::cycle).max().unwrap_or(0);
        let mut early_stopped = false;
        let start_cycle = resumed_from.unwrap_or(0);
        for done in (start_cycle + 1)..=workload.run_cycles {
            engine.step_cycle();
            let row = &golden_rows[(done - 1) as usize];
            for (j, &net) in outputs.iter().enumerate() {
                // Lane 0 replays the golden run by determinism; verify it
                // so a batch can never silently drift.
                assert_eq!(
                    engine.peek(net),
                    row[j],
                    "golden lane diverged from the golden trace at cycle {done}"
                );
                let diff = engine.lanes_differing_from_golden(net) & fault_mask;
                diff.for_each_lane(|lane| divergences[lane - 1] += 1);
            }
            if early_stop && done > last_fault && engine.diverged_lanes().none() {
                let converged = golden
                    .checkpoint_at(done)
                    .is_some_and(|reference| engine.snapshot().converged_with(reference.state()));
                if converged {
                    // Every lane equals the golden state, so the remaining
                    // rows diverge nowhere: stop simulating.
                    early_stopped = true;
                    break;
                }
            }
        }

        Ok(BatchOutcome {
            lanes: divergences
                .iter()
                .map(|&d| LaneOutcome {
                    soft_error: d > 0,
                    divergences: d,
                })
                .collect(),
            work: engine.word_evals() - resumed_at,
            engine: engine.telemetry().since(telemetry_base),
            resumed_from,
            early_stopped,
        })
    }

    /// Runs an arbitrarily long fault queue through bit-parallel sweeps
    /// with early lane retirement: as soon as a lane's fault has fired and
    /// the lane has re-converged with the golden lane, its verdict is
    /// final — the lane retires and is rewritten mid-sweep with the next
    /// pending fault whose injection cycle has not yet passed. Pending
    /// faults that cannot be refilled into the current sweep (their cycle
    /// already passed) seed the next sweep, which fast-forwards from the
    /// latest golden checkpoint at or before its earliest fault.
    ///
    /// A sweep ends as soon as every lane has retired, so queued runs are
    /// implicitly early-stopping. Per-fault observations are nevertheless
    /// bit-identical to [`Dut::run_batch`] and to scalar [`Dut::resume`]
    /// runs: a lane only retires when its full engine state equals the
    /// golden lane's, which (lane 0 being deterministic) proves the
    /// remaining cycles diverge nowhere.
    ///
    /// The optional `cancel` predicate is polled between sweeps and
    /// between lane-refill rounds (once per simulated cycle), so a
    /// cancellation lands mid-batch instead of waiting for the whole queue
    /// to drain. On cancellation the outcome's
    /// [`cancelled`](BatchQueueOutcome::cancelled) flag is set and faults
    /// whose verdict was not yet final stay `None`; completed verdicts are
    /// still exact.
    ///
    /// # Errors
    ///
    /// Propagates engine construction failures.
    ///
    /// # Panics
    ///
    /// Panics when `faults` is empty, when `golden` does not cover
    /// `workload.run_cycles`, or if the golden lane ever disagrees with
    /// the golden trace.
    pub fn run_batch_queue<const W: usize>(
        &self,
        workload: &Workload,
        faults: &[Fault],
        golden: &GoldenRun,
        cancel: Option<&dyn Fn() -> bool>,
    ) -> Result<BatchQueueOutcome, SsresfError> {
        let lanes = W * WORD_LANES;
        assert!(!faults.is_empty(), "a queued batch needs at least 1 fault");
        let golden_rows = &golden.outcome.trace.rows;
        assert_eq!(
            golden_rows.len(),
            workload.run_cycles as usize,
            "golden trace does not cover the workload"
        );
        let (outputs, _) = self.observed_outputs();

        // Pending faults in (cycle, input index) order; stays sorted as
        // refills always remove the earliest eligible entry.
        let mut order: Vec<usize> = (0..faults.len()).collect();
        order.sort_by_key(|&i| (faults[i].cycle(), i));
        let mut pending: VecDeque<usize> = order.into();

        let mut outcomes: Vec<Option<QueuedFaultOutcome>> = vec![None; faults.len()];
        let mut divergences = vec![0usize; faults.len()];
        let mut work = 0u64;
        let mut telemetry = EngineTelemetry::default();
        let mut occupancy = Vec::new();
        let mut refills = 0u64;
        let mut cancelled = false;
        let is_cancelled = || cancel.is_some_and(|c| c());

        while let Some(&head) = pending.front() {
            if is_cancelled() {
                cancelled = true;
                break;
            }
            let mut engine = BitParallelEngine::<W>::new(self.netlist, self.clock)?;
            let resumed_from = match golden.nearest_checkpoint(faults[head].cycle()) {
                Some(start) => {
                    engine.restore(start.state());
                    Some(start.cycle)
                }
                None => {
                    self.setup(&mut engine, workload);
                    None
                }
            };
            let resumed_at = engine.word_evals();
            let telemetry_base = engine.telemetry();
            let start_cycle = resumed_from.unwrap_or(0);

            // Fill the fault lanes from the queue front (every pending
            // fault's cycle is at least the checkpoint cycle).
            let mut owner: Vec<Option<usize>> = vec![None; lanes];
            let mut owned = LaneMask::<W>::EMPTY;
            let mut carried = 0u64;
            for (lane, slot) in owner.iter_mut().enumerate().skip(1) {
                let Some(idx) = pending.pop_front() else {
                    break;
                };
                engine.schedule_fault_in_lane(lane, self.shift_fault(workload, &faults[idx]));
                *slot = Some(idx);
                owned.set(lane);
                carried += 1;
            }

            for done in (start_cycle + 1)..=workload.run_cycles {
                engine.step_cycle();
                let row = &golden_rows[(done - 1) as usize];
                for (j, &net) in outputs.iter().enumerate() {
                    assert_eq!(
                        engine.peek(net),
                        row[j],
                        "golden lane diverged from the golden trace at cycle {done}"
                    );
                    let diff = engine.lanes_differing_from_golden(net) & owned;
                    diff.for_each_lane(|lane| {
                        divergences[owner[lane].expect("diff only on owned lanes")] += 1;
                    });
                }

                // Retire lanes whose verdict is final: the fault has fired
                // (no pending lane fault — a pending fault marks the lane
                // diverged) and the lane's full state equals the golden
                // lane's, so no further divergence is possible.
                let diverged = engine.diverged_lanes();
                for (lane, slot) in owner.iter_mut().enumerate().skip(1) {
                    let Some(idx) = *slot else { continue };
                    if faults[idx].cycle() >= done || diverged.get(lane) {
                        continue;
                    }
                    outcomes[idx] = Some(QueuedFaultOutcome {
                        soft_error: divergences[idx] > 0,
                        divergences: divergences[idx],
                        resumed_from,
                        early_stopped: done < workload.run_cycles,
                    });
                    *slot = None;
                    owned.clear(lane);
                    // Refill with the earliest pending fault still
                    // injectable this sweep (cycle not yet passed).
                    let pos = pending.partition_point(|&i| faults[i].cycle() < done);
                    if pos < pending.len() {
                        let next = pending.remove(pos).expect("pos is in range");
                        engine.schedule_fault_in_lane(
                            lane,
                            self.shift_fault(workload, &faults[next]),
                        );
                        *slot = Some(next);
                        owned.set(lane);
                        carried += 1;
                        refills += 1;
                    }
                }
                if owned.none() {
                    // Every lane retired and nothing is refillable: the
                    // sweep is over.
                    break;
                }
                // Poll between refill rounds so a cancellation lands
                // mid-batch instead of after the whole queue drains.
                if is_cancelled() {
                    cancelled = true;
                    break;
                }
            }

            if !cancelled {
                // Lanes still active at the workload end get their verdict
                // now. On cancellation their divergence counts may be
                // partial, so they keep no verdict at all.
                for &idx in owner.iter().flatten() {
                    outcomes[idx] = Some(QueuedFaultOutcome {
                        soft_error: divergences[idx] > 0,
                        divergences: divergences[idx],
                        resumed_from,
                        early_stopped: false,
                    });
                }
            }
            work += engine.word_evals() - resumed_at;
            telemetry.accumulate(engine.telemetry().since(telemetry_base));
            occupancy.push(carried);
            if cancelled {
                break;
            }
        }

        if !cancelled {
            debug_assert!(
                outcomes.iter().all(Option::is_some),
                "every queued fault fires before the workload ends"
            );
        }
        Ok(BatchQueueOutcome {
            faults: outcomes,
            work,
            engine: telemetry,
            occupancy,
            refills,
            cancelled,
        })
    }

    /// A fault with its workload-relative cycle shifted into absolute
    /// engine cycles.
    fn shift_fault(&self, workload: &Workload, fault: &Fault) -> Fault {
        let offset = if self.reset.is_some() {
            workload.reset_cycles
        } else {
            0
        };
        match *fault {
            Fault::Seu(f) => Fault::Seu(SeuFault {
                cycle: f.cycle + offset,
                ..f
            }),
            Fault::Set(f) => Fault::Set(SetFault {
                cycle: f.cycle + offset,
                ..f
            }),
        }
    }

    /// Reset sequence plus post-reset memory-image load — the state every
    /// run starts from, and the state a cycle-0 checkpoint captures.
    fn setup<E: Engine>(&self, engine: &mut E, workload: &Workload) {
        if let Some(rst) = self.reset {
            engine.poke(rst, Logic::Zero);
            for _ in 0..workload.reset_cycles {
                engine.step_cycle();
            }
            engine.poke(rst, Logic::One);
        }
        // Memory-image load happens after reset so that the first clock
        // edges never latch undefined write-enables into the array.
        let memory_cells: Vec<_> = self
            .netlist
            .iter_cells()
            .filter(|(_, c)| c.kind.is_memory_bit())
            .map(|(id, _)| id)
            .collect();
        engine.set_cell_states(&memory_cells, Logic::Zero);
    }

    /// Schedules `faults` with their workload-relative cycles shifted into
    /// absolute engine cycles.
    fn schedule_shifted<E: Engine>(&self, engine: &mut E, workload: &Workload, faults: &[Fault]) {
        for fault in faults {
            engine.schedule_fault(self.shift_fault(workload, fault));
        }
    }

    /// All primary outputs plus an empty trace named after them.
    fn observed_outputs(&self) -> (Vec<NetId>, CycleTrace) {
        let outputs: Vec<NetId> = self.netlist.primary_outputs().to_vec();
        let names = outputs
            .iter()
            .map(|&n| self.netlist.net_full_name(n))
            .collect();
        (outputs, CycleTrace::new(names))
    }

    fn drive<E: Engine>(
        &self,
        mut engine: E,
        workload: &Workload,
        faults: &[Fault],
        work: impl Fn(&E) -> u64,
    ) -> Result<RunOutcome, SsresfError> {
        self.setup(&mut engine, workload);
        self.schedule_shifted(&mut engine, workload, faults);
        let (outputs, mut trace) = self.observed_outputs();
        for _ in 0..workload.run_cycles {
            engine.step_cycle();
            trace.push_row(engine.sample(&outputs));
        }
        Ok(RunOutcome {
            trace,
            activity_per_cycle: engine.activity_per_cycle(),
            work: work(&engine),
            engine: engine.telemetry(),
            resumed_from: None,
            early_stopped: false,
        })
    }

    fn drive_golden<E: Engine>(
        &self,
        mut engine: E,
        workload: &Workload,
        interval: u64,
        work: impl Fn(&E) -> u64,
    ) -> Result<GoldenRun, SsresfError> {
        self.setup(&mut engine, workload);
        let (outputs, mut trace) = self.observed_outputs();
        let mut checkpoints = Vec::new();
        if interval > 0 {
            checkpoints.push(Checkpoint {
                cycle: 0,
                state: engine.snapshot(),
            });
        }
        for done in 1..=workload.run_cycles {
            engine.step_cycle();
            trace.push_row(engine.sample(&outputs));
            if interval > 0 && done % interval == 0 && done < workload.run_cycles {
                checkpoints.push(Checkpoint {
                    cycle: done,
                    state: engine.snapshot(),
                });
            }
        }
        Ok(GoldenRun {
            outcome: RunOutcome {
                trace,
                activity_per_cycle: engine.activity_per_cycle(),
                work: work(&engine),
                engine: engine.telemetry(),
                resumed_from: None,
                early_stopped: false,
            },
            checkpoints,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn drive_resumed<E: Engine>(
        &self,
        mut engine: E,
        workload: &Workload,
        faults: &[Fault],
        golden: &GoldenRun,
        start: &Checkpoint,
        early_stop: bool,
        work: impl Fn(&E) -> u64,
    ) -> Result<RunOutcome, SsresfError> {
        engine.restore(&start.state);
        let resumed_at = work(&engine);
        let telemetry_base = engine.telemetry();
        self.schedule_shifted(&mut engine, workload, faults);
        let (outputs, mut trace) = self.observed_outputs();
        for row in &golden.outcome.trace.rows[..start.cycle as usize] {
            trace.push_row(row.clone());
        }
        let last_fault = faults.iter().map(Fault::cycle).max().unwrap_or(0);
        let mut early_stopped = false;
        for done in (start.cycle + 1)..=workload.run_cycles {
            engine.step_cycle();
            trace.push_row(engine.sample(&outputs));
            if early_stop && done > last_fault {
                let converged = golden
                    .checkpoint_at(done)
                    .is_some_and(|reference| engine.snapshot().converged_with(&reference.state));
                if converged {
                    // The faulty run's state is bit-identical to golden, so
                    // every remaining row is too: fill and stop simulating.
                    for row in &golden.outcome.trace.rows[done as usize..] {
                        trace.push_row(row.clone());
                    }
                    early_stopped = true;
                    break;
                }
            }
        }
        Ok(RunOutcome {
            trace,
            activity_per_cycle: engine.activity_per_cycle(),
            work: work(&engine) - resumed_at,
            engine: engine.telemetry().since(telemetry_base),
            resumed_from: Some(start.cycle),
            early_stopped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssresf_netlist::{CellKind, Design, ModuleBuilder, PortDir};

    fn counter_netlist() -> FlatNetlist {
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("ctr");
        let clk = mb.port("clk", PortDir::Input);
        let rst_n = mb.port("rst_n", PortDir::Input);
        let q0 = mb.port("q0", PortDir::Output);
        let nq = mb.net("nq");
        mb.cell("u_inv", CellKind::Inv, &[q0], &[nq]).unwrap();
        mb.cell("u_ff", CellKind::Dffr, &[clk, nq, rst_n], &[q0])
            .unwrap();
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        design.flatten().unwrap()
    }

    #[test]
    fn conventions_find_clock_and_reset() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        assert_eq!(flat.net_full_name(dut.clock()), "clk");
    }

    #[test]
    fn missing_clock_is_an_error() {
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("comb");
        let a = mb.port("a", PortDir::Input);
        let y = mb.port("y", PortDir::Output);
        mb.cell("u0", CellKind::Inv, &[a], &[y]).unwrap();
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        let flat = design.flatten().unwrap();
        assert!(matches!(
            Dut::from_conventions(&flat),
            Err(SsresfError::MissingNet(_))
        ));
    }

    #[test]
    fn both_engines_produce_identical_golden_traces() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let wl = Workload {
            reset_cycles: 2,
            run_cycles: 12,
        };
        let ev = dut.run(EngineKind::EventDriven, &wl, &[]).unwrap();
        let lv = dut.run(EngineKind::Levelized, &wl, &[]).unwrap();
        assert!(ev.trace.matches(&lv.trace));
        assert_eq!(ev.trace.len(), 12);
        assert!(ev.work > 0 && lv.work > 0);
    }

    #[test]
    fn fault_cycles_are_relative_to_post_reset_time() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let wl = Workload {
            reset_cycles: 4,
            run_cycles: 10,
        };
        let golden = dut.run(EngineKind::EventDriven, &wl, &[]).unwrap();
        let ff = flat.cell_by_name("u_ff").unwrap();
        let faulty = dut
            .run(
                EngineKind::EventDriven,
                &wl,
                &[Fault::Seu(SeuFault {
                    cell: ff,
                    cycle: 5,
                    offset: 0.1,
                })],
            )
            .unwrap();
        let diffs = golden.trace.diff(&faulty.trace);
        assert!(!diffs.is_empty());
        // The first divergence appears exactly at workload cycle 5.
        assert_eq!(diffs.iter().map(|d| d.cycle).min(), Some(5));
    }

    #[test]
    fn golden_checkpoints_are_spaced_by_interval() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let wl = Workload {
            reset_cycles: 2,
            run_cycles: 25,
        };
        let golden = dut
            .run_golden_with_checkpoints(EngineKind::EventDriven, &wl, 10)
            .unwrap();
        let cycles: Vec<u64> = golden.checkpoints.iter().map(|c| c.cycle).collect();
        assert_eq!(cycles, vec![0, 10, 20]);
        assert_eq!(golden.nearest_checkpoint(9).unwrap().cycle, 0);
        assert_eq!(golden.nearest_checkpoint(10).unwrap().cycle, 10);
        assert_eq!(golden.nearest_checkpoint(24).unwrap().cycle, 20);
        assert!(golden.checkpoint_at(15).is_none());
        assert_eq!(golden.checkpoint_at(20).unwrap().state().cycle(), 22);

        let none = dut
            .run_golden_with_checkpoints(EngineKind::EventDriven, &wl, 0)
            .unwrap();
        assert!(none.checkpoints.is_empty());
        assert!(none.outcome.trace.matches(&golden.outcome.trace));
    }

    #[test]
    fn resume_matches_from_scratch_for_both_engines() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let wl = Workload {
            reset_cycles: 3,
            run_cycles: 30,
        };
        let ff = flat.cell_by_name("u_ff").unwrap();
        for kind in [EngineKind::EventDriven, EngineKind::Levelized] {
            let golden = dut.run_golden_with_checkpoints(kind, &wl, 8).unwrap();
            // Mid-interval, exactly on a checkpoint boundary, and cycle 0.
            for cycle in [13, 16, 0] {
                let fault = Fault::Seu(SeuFault {
                    cell: ff,
                    cycle,
                    offset: 0.2,
                });
                let scratch = dut.run(kind, &wl, &[fault]).unwrap();
                let resumed = dut.resume(kind, &wl, &[fault], &golden, false).unwrap();
                assert!(
                    scratch.trace.matches(&resumed.trace),
                    "{} fault at {cycle} diverges",
                    kind.name()
                );
                assert!(resumed.work <= scratch.work);
            }
        }
    }

    #[test]
    fn batch_queue_honors_cancellation_between_refill_rounds() {
        use std::cell::Cell;
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let wl = Workload {
            reset_cycles: 2,
            run_cycles: 40,
        };
        let golden = dut
            .run_golden_with_checkpoints(EngineKind::Levelized, &wl, 8)
            .unwrap();
        let ff = flat.cell_by_name("u_ff").unwrap();
        let faults: Vec<Fault> = (0..6)
            .map(|i| {
                Fault::Seu(SeuFault {
                    cell: ff,
                    cycle: 1 + 2 * i,
                    offset: 0.1,
                })
            })
            .collect();

        // Baseline: no cancel hook and a never-firing hook are identical.
        let base = dut
            .run_batch_queue::<1>(&wl, &faults, &golden, None)
            .unwrap();
        assert!(!base.cancelled);
        assert!(base.faults.iter().all(Option::is_some));
        let never = dut
            .run_batch_queue::<1>(
                &wl,
                &faults,
                &golden,
                Some(&(|| false) as &dyn Fn() -> bool),
            )
            .unwrap();
        assert_eq!(base, never);

        // A cancel firing on the third poll lands mid-batch: simulation
        // work was already spent, but no verdict is finalized and the
        // outcome says so.
        let polls = Cell::new(0u32);
        let cancel = || {
            polls.set(polls.get() + 1);
            polls.get() >= 3
        };
        let out = dut
            .run_batch_queue::<1>(&wl, &faults, &golden, Some(&cancel as &dyn Fn() -> bool))
            .unwrap();
        assert!(out.cancelled);
        assert!(out.work > 0, "cancellation fired before any simulation");
        assert!(
            out.work < base.work,
            "cancellation did not truncate the sweep"
        );
        assert!(
            out.faults.iter().any(Option::is_none),
            "mid-batch cancel left no unfinished fault"
        );

        // A pre-set cancellation returns before any sweep starts.
        let pre = dut
            .run_batch_queue::<1>(&wl, &faults, &golden, Some(&(|| true) as &dyn Fn() -> bool))
            .unwrap();
        assert!(pre.cancelled);
        assert_eq!(pre.work, 0);
        assert!(pre.occupancy.is_empty());
        assert!(pre.faults.iter().all(Option::is_none));
    }

    #[test]
    fn activity_is_normalized_per_cycle() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let out = dut
            .run(EngineKind::EventDriven, &Workload::default(), &[])
            .unwrap();
        let q0 = flat.net_by_name("q0").unwrap();
        // The toggler flips every cycle.
        assert!(out.activity_per_cycle[q0.index()] > 0.5);
    }
}
