//! Driving a device-under-test through its workload.
//!
//! SSRESF designs follow two conventions: the clock input is named `clk`
//! and the active-low reset `rst_n`. A [`Dut`] wraps a flat netlist, builds
//! either simulation engine on demand, and runs the standard sequence —
//! reset, post-reset memory-image load, then `run_cycles` of execution —
//! sampling all primary outputs each cycle.

use crate::error::SsresfError;
use serde::{Deserialize, Serialize};
use ssresf_netlist::{FlatNetlist, NetId};
use ssresf_sim::{
    BitParallelEngine, CycleTrace, Engine, EngineState, EngineTelemetry, EventDrivenEngine, Fault,
    LevelizedEngine, Logic, SetFault, SeuFault, LANES,
};

/// Which simulation engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineKind {
    /// [`EventDrivenEngine`] — the VCS stand-in.
    EventDriven,
    /// [`LevelizedEngine`] — the OSS-CVC stand-in.
    Levelized,
}

impl EngineKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::EventDriven => "event-driven",
            EngineKind::Levelized => "levelized",
        }
    }
}

/// Workload length parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// Cycles with reset asserted.
    pub reset_cycles: u64,
    /// Post-reset cycles simulated and observed.
    pub run_cycles: u64,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            reset_cycles: 3,
            run_cycles: 120,
        }
    }
}

/// One simulation run's outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Per-cycle primary-output samples (post-reset cycles only).
    pub trace: CycleTrace,
    /// Per-net toggle activity per cycle (for the activity feature).
    pub activity_per_cycle: Vec<f64>,
    /// Engine work proxy (events processed / cells evaluated).
    pub work: u64,
    /// Engine-level event counters for this run (resumed runs count only
    /// the resumed portion, mirroring [`RunOutcome::work`]).
    pub engine: EngineTelemetry,
    /// The golden checkpoint cycle this run fast-forwarded from, if any.
    pub resumed_from: Option<u64>,
    /// Whether early stop truncated this run's simulated tail.
    pub early_stopped: bool,
}

/// Per-fault observation of one lane of a batched run; field-compatible
/// with the observations a scalar [`Dut::resume`] run yields through a
/// golden-trace diff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneOutcome {
    /// Whether the lane's primary outputs ever differed from the golden
    /// lane.
    pub soft_error: bool,
    /// Number of (cycle, signal) divergences against the golden lane.
    pub divergences: usize,
}

/// Outcome of one bit-parallel batched run ([`Dut::run_batch`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// One observation per scheduled fault, in scheduling order.
    pub lanes: Vec<LaneOutcome>,
    /// Word evaluations spent on the batch (excluding any fast-forwarded
    /// prefix); one word evaluation covers a cell for all lanes.
    pub work: u64,
    /// Engine-level counters for the batched portion of the run.
    pub engine: EngineTelemetry,
    /// The golden checkpoint cycle the batch fast-forwarded from, if any.
    pub resumed_from: Option<u64>,
    /// Whether early stop truncated the batch's simulated tail.
    pub early_stopped: bool,
}

/// A golden-run engine snapshot taken at a post-reset cycle boundary.
///
/// Restoring it fast-forwards a faulty run past the cycles the golden run
/// already simulated; see [`Dut::resume`].
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Post-reset cycles completed when the snapshot was taken (0 = right
    /// after reset and memory-image load, before the first workload cycle).
    pub cycle: u64,
    state: EngineState,
}

impl Checkpoint {
    /// The captured engine state.
    pub fn state(&self) -> &EngineState {
        &self.state
    }
}

/// A golden (fault-free) run plus the checkpoints recorded along it.
#[derive(Debug, Clone)]
pub struct GoldenRun {
    /// The golden run's trace, activity and work.
    pub outcome: RunOutcome,
    /// Snapshots in strictly increasing cycle order; empty when
    /// checkpointing was disabled.
    pub checkpoints: Vec<Checkpoint>,
}

impl GoldenRun {
    /// The latest checkpoint at or before `cycle`.
    pub fn nearest_checkpoint(&self, cycle: u64) -> Option<&Checkpoint> {
        let idx = self.checkpoints.partition_point(|c| c.cycle <= cycle);
        idx.checked_sub(1).map(|i| &self.checkpoints[i])
    }

    /// The checkpoint taken exactly at `cycle`, if any.
    pub fn checkpoint_at(&self, cycle: u64) -> Option<&Checkpoint> {
        self.checkpoints
            .binary_search_by_key(&cycle, |c| c.cycle)
            .ok()
            .map(|i| &self.checkpoints[i])
    }
}

/// A device-under-test: netlist plus its clock/reset conventions.
#[derive(Debug, Clone, Copy)]
pub struct Dut<'a> {
    netlist: &'a FlatNetlist,
    clock: NetId,
    reset: Option<NetId>,
}

impl<'a> Dut<'a> {
    /// Wraps a netlist using the `clk`/`rst_n` naming conventions.
    ///
    /// # Errors
    ///
    /// Returns [`SsresfError::MissingNet`] when no `clk` input exists. A
    /// missing `rst_n` is tolerated (purely combinational DUTs).
    pub fn from_conventions(netlist: &'a FlatNetlist) -> Result<Self, SsresfError> {
        let clock = netlist
            .net_by_name("clk")
            .ok_or_else(|| SsresfError::MissingNet("clk".into()))?;
        let reset = netlist.net_by_name("rst_n");
        Ok(Dut {
            netlist,
            clock,
            reset,
        })
    }

    /// The wrapped netlist.
    pub fn netlist(&self) -> &'a FlatNetlist {
        self.netlist
    }

    /// The clock net.
    pub fn clock(&self) -> NetId {
        self.clock
    }

    /// Runs the workload with the given faults (whose cycles are relative
    /// to the first post-reset cycle).
    ///
    /// # Errors
    ///
    /// Propagates engine construction failures.
    pub fn run(
        &self,
        kind: EngineKind,
        workload: &Workload,
        faults: &[Fault],
    ) -> Result<RunOutcome, SsresfError> {
        match kind {
            EngineKind::EventDriven => {
                let engine = EventDrivenEngine::new(self.netlist, self.clock)?;
                self.drive(engine, workload, faults, |e| e.events_processed())
            }
            EngineKind::Levelized => {
                let engine = LevelizedEngine::new(self.netlist, self.clock)?;
                self.drive(engine, workload, faults, |e| e.cells_evaluated())
            }
        }
    }

    /// Runs the fault-free workload, snapshotting engine state every
    /// `interval` post-reset cycles — plus once right after reset and
    /// memory-image load, before the first workload cycle. An `interval`
    /// of 0 disables checkpointing (the returned run has no checkpoints).
    ///
    /// # Errors
    ///
    /// Propagates engine construction failures.
    pub fn run_golden_with_checkpoints(
        &self,
        kind: EngineKind,
        workload: &Workload,
        interval: u64,
    ) -> Result<GoldenRun, SsresfError> {
        match kind {
            EngineKind::EventDriven => {
                let engine = EventDrivenEngine::new(self.netlist, self.clock)?;
                self.drive_golden(engine, workload, interval, |e| e.events_processed())
            }
            EngineKind::Levelized => {
                let engine = LevelizedEngine::new(self.netlist, self.clock)?;
                self.drive_golden(engine, workload, interval, |e| e.cells_evaluated())
            }
        }
    }

    /// Re-runs the workload with `faults`, fast-forwarding over the golden
    /// prefix: the engine restores the latest golden checkpoint at or
    /// before the earliest fault cycle and simulates only the remaining
    /// cycles, with the skipped trace prefix copied from the golden run
    /// (bit-identical by determinism — the fault has not fired yet).
    ///
    /// With `early_stop`, the run also terminates at the first golden
    /// checkpoint boundary past the last fault cycle where the engine
    /// state has re-converged with the golden run; the remaining rows are
    /// filled from the golden trace, which the convergence check proves
    /// identical. Either way the returned trace is bit-identical to a
    /// from-scratch [`run`](Dut::run) with the same faults.
    /// [`RunOutcome::work`] counts only the work of the resumed portion,
    /// and [`RunOutcome::activity_per_cycle`] covers the golden prefix
    /// plus the simulated suffix.
    ///
    /// Falls back to a from-scratch [`run`](Dut::run) when `golden` holds
    /// no checkpoints.
    ///
    /// # Errors
    ///
    /// Propagates engine construction failures.
    pub fn resume(
        &self,
        kind: EngineKind,
        workload: &Workload,
        faults: &[Fault],
        golden: &GoldenRun,
        early_stop: bool,
    ) -> Result<RunOutcome, SsresfError> {
        let first_fault = faults.iter().map(Fault::cycle).min().unwrap_or(0);
        let Some(start) = golden.nearest_checkpoint(first_fault) else {
            return self.run(kind, workload, faults);
        };
        match kind {
            EngineKind::EventDriven => {
                let engine = EventDrivenEngine::new(self.netlist, self.clock)?;
                self.drive_resumed(engine, workload, faults, golden, start, early_stop, |e| {
                    e.events_processed()
                })
            }
            EngineKind::Levelized => {
                let engine = LevelizedEngine::new(self.netlist, self.clock)?;
                self.drive_resumed(engine, workload, faults, golden, start, early_stop, |e| {
                    e.cells_evaluated()
                })
            }
        }
    }

    /// Runs up to [`LANES`]` - 1` faulty instances in one bit-parallel
    /// sweep: lane 0 replays the golden run, lane `i + 1` carries
    /// `faults[i]`, and the whole batch shares one netlist evaluation per
    /// cycle.
    ///
    /// Per-lane observations are bit-identical to what a scalar
    /// [`Dut::resume`] with the single fault would yield through a
    /// golden-trace diff — same soft-error verdicts, same divergence
    /// counts. Like [`Dut::resume`], the batch fast-forwards from the
    /// latest golden checkpoint at or before the earliest fault cycle
    /// (the checkpoints must come from a levelized golden run), and with
    /// `early_stop` it terminates at the first checkpoint boundary past
    /// the last fault cycle where *every* lane has re-converged with the
    /// golden run.
    ///
    /// # Errors
    ///
    /// Propagates engine construction failures.
    ///
    /// # Panics
    ///
    /// Panics when `faults` is empty or exceeds [`LANES`]` - 1`, when
    /// `golden` does not cover `workload.run_cycles`, or if the golden
    /// lane ever disagrees with the golden trace (an engine bug, never
    /// silent data corruption).
    pub fn run_batch(
        &self,
        workload: &Workload,
        faults: &[Fault],
        golden: &GoldenRun,
        early_stop: bool,
    ) -> Result<BatchOutcome, SsresfError> {
        assert!(
            (1..LANES).contains(&faults.len()),
            "a batch carries 1..={} faults, got {}",
            LANES - 1,
            faults.len()
        );
        let golden_rows = &golden.outcome.trace.rows;
        assert_eq!(
            golden_rows.len(),
            workload.run_cycles as usize,
            "golden trace does not cover the workload"
        );
        let mut engine = BitParallelEngine::new(self.netlist, self.clock)?;

        let first_fault = faults.iter().map(Fault::cycle).min().unwrap_or(0);
        let resumed_from = match golden.nearest_checkpoint(first_fault) {
            Some(start) => {
                engine.restore(start.state());
                Some(start.cycle)
            }
            None => {
                self.setup(&mut engine, workload);
                None
            }
        };
        let resumed_at = engine.word_evals();
        let telemetry_base = engine.telemetry();

        let offset = if self.reset.is_some() {
            workload.reset_cycles
        } else {
            0
        };
        for (i, fault) in faults.iter().enumerate() {
            let shifted = match *fault {
                Fault::Seu(f) => Fault::Seu(SeuFault {
                    cycle: f.cycle + offset,
                    ..f
                }),
                Fault::Set(f) => Fault::Set(SetFault {
                    cycle: f.cycle + offset,
                    ..f
                }),
            };
            engine.schedule_fault_in_lane(i + 1, shifted);
        }

        let (outputs, _) = self.observed_outputs();
        // Lanes carrying faults; avoids the undefined `1 << 64` for a full
        // 63-fault batch.
        let fault_mask = (1..=faults.len()).fold(0u64, |m, l| m | (1 << l));
        let mut divergences = vec![0usize; faults.len()];
        let last_fault = faults.iter().map(Fault::cycle).max().unwrap_or(0);
        let mut early_stopped = false;
        let start_cycle = resumed_from.unwrap_or(0);
        for done in (start_cycle + 1)..=workload.run_cycles {
            engine.step_cycle();
            let row = &golden_rows[(done - 1) as usize];
            for (j, &net) in outputs.iter().enumerate() {
                // Lane 0 replays the golden run by determinism; verify it
                // so a batch can never silently drift.
                assert_eq!(
                    engine.peek(net),
                    row[j],
                    "golden lane diverged from the golden trace at cycle {done}"
                );
                let mut lanes = engine.lanes_differing_from_golden(net) & fault_mask;
                while lanes != 0 {
                    let lane = lanes.trailing_zeros() as usize;
                    divergences[lane - 1] += 1;
                    lanes &= lanes - 1;
                }
            }
            if early_stop && done > last_fault && engine.diverged_lanes() == 0 {
                let converged = golden
                    .checkpoint_at(done)
                    .is_some_and(|reference| engine.snapshot().converged_with(reference.state()));
                if converged {
                    // Every lane equals the golden state, so the remaining
                    // rows diverge nowhere: stop simulating.
                    early_stopped = true;
                    break;
                }
            }
        }

        Ok(BatchOutcome {
            lanes: divergences
                .iter()
                .map(|&d| LaneOutcome {
                    soft_error: d > 0,
                    divergences: d,
                })
                .collect(),
            work: engine.word_evals() - resumed_at,
            engine: engine.telemetry().since(telemetry_base),
            resumed_from,
            early_stopped,
        })
    }

    /// Reset sequence plus post-reset memory-image load — the state every
    /// run starts from, and the state a cycle-0 checkpoint captures.
    fn setup<E: Engine>(&self, engine: &mut E, workload: &Workload) {
        if let Some(rst) = self.reset {
            engine.poke(rst, Logic::Zero);
            for _ in 0..workload.reset_cycles {
                engine.step_cycle();
            }
            engine.poke(rst, Logic::One);
        }
        // Memory-image load happens after reset so that the first clock
        // edges never latch undefined write-enables into the array.
        let memory_cells: Vec<_> = self
            .netlist
            .iter_cells()
            .filter(|(_, c)| c.kind.is_memory_bit())
            .map(|(id, _)| id)
            .collect();
        for id in memory_cells {
            engine.set_cell_state(id, Logic::Zero);
        }
    }

    /// Schedules `faults` with their workload-relative cycles shifted into
    /// absolute engine cycles.
    fn schedule_shifted<E: Engine>(&self, engine: &mut E, workload: &Workload, faults: &[Fault]) {
        let offset = if self.reset.is_some() {
            workload.reset_cycles
        } else {
            0
        };
        for fault in faults {
            let shifted = match *fault {
                Fault::Seu(f) => Fault::Seu(SeuFault {
                    cycle: f.cycle + offset,
                    ..f
                }),
                Fault::Set(f) => Fault::Set(SetFault {
                    cycle: f.cycle + offset,
                    ..f
                }),
            };
            engine.schedule_fault(shifted);
        }
    }

    /// All primary outputs plus an empty trace named after them.
    fn observed_outputs(&self) -> (Vec<NetId>, CycleTrace) {
        let outputs: Vec<NetId> = self.netlist.primary_outputs().to_vec();
        let names = outputs
            .iter()
            .map(|&n| self.netlist.net(n).name.clone())
            .collect();
        (outputs, CycleTrace::new(names))
    }

    fn drive<E: Engine>(
        &self,
        mut engine: E,
        workload: &Workload,
        faults: &[Fault],
        work: impl Fn(&E) -> u64,
    ) -> Result<RunOutcome, SsresfError> {
        self.setup(&mut engine, workload);
        self.schedule_shifted(&mut engine, workload, faults);
        let (outputs, mut trace) = self.observed_outputs();
        for _ in 0..workload.run_cycles {
            engine.step_cycle();
            trace.push_row(engine.sample(&outputs));
        }
        Ok(RunOutcome {
            trace,
            activity_per_cycle: engine.activity_per_cycle(),
            work: work(&engine),
            engine: engine.telemetry(),
            resumed_from: None,
            early_stopped: false,
        })
    }

    fn drive_golden<E: Engine>(
        &self,
        mut engine: E,
        workload: &Workload,
        interval: u64,
        work: impl Fn(&E) -> u64,
    ) -> Result<GoldenRun, SsresfError> {
        self.setup(&mut engine, workload);
        let (outputs, mut trace) = self.observed_outputs();
        let mut checkpoints = Vec::new();
        if interval > 0 {
            checkpoints.push(Checkpoint {
                cycle: 0,
                state: engine.snapshot(),
            });
        }
        for done in 1..=workload.run_cycles {
            engine.step_cycle();
            trace.push_row(engine.sample(&outputs));
            if interval > 0 && done % interval == 0 && done < workload.run_cycles {
                checkpoints.push(Checkpoint {
                    cycle: done,
                    state: engine.snapshot(),
                });
            }
        }
        Ok(GoldenRun {
            outcome: RunOutcome {
                trace,
                activity_per_cycle: engine.activity_per_cycle(),
                work: work(&engine),
                engine: engine.telemetry(),
                resumed_from: None,
                early_stopped: false,
            },
            checkpoints,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn drive_resumed<E: Engine>(
        &self,
        mut engine: E,
        workload: &Workload,
        faults: &[Fault],
        golden: &GoldenRun,
        start: &Checkpoint,
        early_stop: bool,
        work: impl Fn(&E) -> u64,
    ) -> Result<RunOutcome, SsresfError> {
        engine.restore(&start.state);
        let resumed_at = work(&engine);
        let telemetry_base = engine.telemetry();
        self.schedule_shifted(&mut engine, workload, faults);
        let (outputs, mut trace) = self.observed_outputs();
        for row in &golden.outcome.trace.rows[..start.cycle as usize] {
            trace.push_row(row.clone());
        }
        let last_fault = faults.iter().map(Fault::cycle).max().unwrap_or(0);
        let mut early_stopped = false;
        for done in (start.cycle + 1)..=workload.run_cycles {
            engine.step_cycle();
            trace.push_row(engine.sample(&outputs));
            if early_stop && done > last_fault {
                let converged = golden
                    .checkpoint_at(done)
                    .is_some_and(|reference| engine.snapshot().converged_with(&reference.state));
                if converged {
                    // The faulty run's state is bit-identical to golden, so
                    // every remaining row is too: fill and stop simulating.
                    for row in &golden.outcome.trace.rows[done as usize..] {
                        trace.push_row(row.clone());
                    }
                    early_stopped = true;
                    break;
                }
            }
        }
        Ok(RunOutcome {
            trace,
            activity_per_cycle: engine.activity_per_cycle(),
            work: work(&engine) - resumed_at,
            engine: engine.telemetry().since(telemetry_base),
            resumed_from: Some(start.cycle),
            early_stopped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssresf_netlist::{CellKind, Design, ModuleBuilder, PortDir};

    fn counter_netlist() -> FlatNetlist {
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("ctr");
        let clk = mb.port("clk", PortDir::Input);
        let rst_n = mb.port("rst_n", PortDir::Input);
        let q0 = mb.port("q0", PortDir::Output);
        let nq = mb.net("nq");
        mb.cell("u_inv", CellKind::Inv, &[q0], &[nq]).unwrap();
        mb.cell("u_ff", CellKind::Dffr, &[clk, nq, rst_n], &[q0])
            .unwrap();
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        design.flatten().unwrap()
    }

    #[test]
    fn conventions_find_clock_and_reset() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        assert_eq!(flat.net(dut.clock()).name, "clk");
    }

    #[test]
    fn missing_clock_is_an_error() {
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("comb");
        let a = mb.port("a", PortDir::Input);
        let y = mb.port("y", PortDir::Output);
        mb.cell("u0", CellKind::Inv, &[a], &[y]).unwrap();
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        let flat = design.flatten().unwrap();
        assert!(matches!(
            Dut::from_conventions(&flat),
            Err(SsresfError::MissingNet(_))
        ));
    }

    #[test]
    fn both_engines_produce_identical_golden_traces() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let wl = Workload {
            reset_cycles: 2,
            run_cycles: 12,
        };
        let ev = dut.run(EngineKind::EventDriven, &wl, &[]).unwrap();
        let lv = dut.run(EngineKind::Levelized, &wl, &[]).unwrap();
        assert!(ev.trace.matches(&lv.trace));
        assert_eq!(ev.trace.len(), 12);
        assert!(ev.work > 0 && lv.work > 0);
    }

    #[test]
    fn fault_cycles_are_relative_to_post_reset_time() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let wl = Workload {
            reset_cycles: 4,
            run_cycles: 10,
        };
        let golden = dut.run(EngineKind::EventDriven, &wl, &[]).unwrap();
        let ff = flat.cell_by_name("u_ff").unwrap();
        let faulty = dut
            .run(
                EngineKind::EventDriven,
                &wl,
                &[Fault::Seu(SeuFault {
                    cell: ff,
                    cycle: 5,
                    offset: 0.1,
                })],
            )
            .unwrap();
        let diffs = golden.trace.diff(&faulty.trace);
        assert!(!diffs.is_empty());
        // The first divergence appears exactly at workload cycle 5.
        assert_eq!(diffs.iter().map(|d| d.cycle).min(), Some(5));
    }

    #[test]
    fn golden_checkpoints_are_spaced_by_interval() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let wl = Workload {
            reset_cycles: 2,
            run_cycles: 25,
        };
        let golden = dut
            .run_golden_with_checkpoints(EngineKind::EventDriven, &wl, 10)
            .unwrap();
        let cycles: Vec<u64> = golden.checkpoints.iter().map(|c| c.cycle).collect();
        assert_eq!(cycles, vec![0, 10, 20]);
        assert_eq!(golden.nearest_checkpoint(9).unwrap().cycle, 0);
        assert_eq!(golden.nearest_checkpoint(10).unwrap().cycle, 10);
        assert_eq!(golden.nearest_checkpoint(24).unwrap().cycle, 20);
        assert!(golden.checkpoint_at(15).is_none());
        assert_eq!(golden.checkpoint_at(20).unwrap().state().cycle(), 22);

        let none = dut
            .run_golden_with_checkpoints(EngineKind::EventDriven, &wl, 0)
            .unwrap();
        assert!(none.checkpoints.is_empty());
        assert!(none.outcome.trace.matches(&golden.outcome.trace));
    }

    #[test]
    fn resume_matches_from_scratch_for_both_engines() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let wl = Workload {
            reset_cycles: 3,
            run_cycles: 30,
        };
        let ff = flat.cell_by_name("u_ff").unwrap();
        for kind in [EngineKind::EventDriven, EngineKind::Levelized] {
            let golden = dut.run_golden_with_checkpoints(kind, &wl, 8).unwrap();
            // Mid-interval, exactly on a checkpoint boundary, and cycle 0.
            for cycle in [13, 16, 0] {
                let fault = Fault::Seu(SeuFault {
                    cell: ff,
                    cycle,
                    offset: 0.2,
                });
                let scratch = dut.run(kind, &wl, &[fault]).unwrap();
                let resumed = dut.resume(kind, &wl, &[fault], &golden, false).unwrap();
                assert!(
                    scratch.trace.matches(&resumed.trace),
                    "{} fault at {cycle} diverges",
                    kind.name()
                );
                assert!(resumed.work <= scratch.work);
            }
        }
    }

    #[test]
    fn activity_is_normalized_per_cycle() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let out = dut
            .run(EngineKind::EventDriven, &Workload::default(), &[])
            .unwrap();
        let q0 = flat.net_by_name("q0").unwrap();
        // The toggler flips every cycle.
        assert!(out.activity_per_cycle[q0.index()] > 0.5);
    }
}
