//! Driving a device-under-test through its workload.
//!
//! SSRESF designs follow two conventions: the clock input is named `clk`
//! and the active-low reset `rst_n`. A [`Dut`] wraps a flat netlist, builds
//! either simulation engine on demand, and runs the standard sequence —
//! reset, post-reset memory-image load, then `run_cycles` of execution —
//! sampling all primary outputs each cycle.

use crate::error::SsresfError;
use serde::{Deserialize, Serialize};
use ssresf_netlist::{FlatNetlist, NetId};
use ssresf_sim::{
    CycleTrace, Engine, EventDrivenEngine, Fault, LevelizedEngine, Logic, SetFault, SeuFault,
};

/// Which simulation engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineKind {
    /// [`EventDrivenEngine`] — the VCS stand-in.
    EventDriven,
    /// [`LevelizedEngine`] — the OSS-CVC stand-in.
    Levelized,
}

impl EngineKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::EventDriven => "event-driven",
            EngineKind::Levelized => "levelized",
        }
    }
}

/// Workload length parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// Cycles with reset asserted.
    pub reset_cycles: u64,
    /// Post-reset cycles simulated and observed.
    pub run_cycles: u64,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            reset_cycles: 3,
            run_cycles: 120,
        }
    }
}

/// One simulation run's outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Per-cycle primary-output samples (post-reset cycles only).
    pub trace: CycleTrace,
    /// Per-net toggle activity per cycle (for the activity feature).
    pub activity_per_cycle: Vec<f64>,
    /// Engine work proxy (events processed / cells evaluated).
    pub work: u64,
}

/// A device-under-test: netlist plus its clock/reset conventions.
#[derive(Debug, Clone, Copy)]
pub struct Dut<'a> {
    netlist: &'a FlatNetlist,
    clock: NetId,
    reset: Option<NetId>,
}

impl<'a> Dut<'a> {
    /// Wraps a netlist using the `clk`/`rst_n` naming conventions.
    ///
    /// # Errors
    ///
    /// Returns [`SsresfError::MissingNet`] when no `clk` input exists. A
    /// missing `rst_n` is tolerated (purely combinational DUTs).
    pub fn from_conventions(netlist: &'a FlatNetlist) -> Result<Self, SsresfError> {
        let clock = netlist
            .net_by_name("clk")
            .ok_or_else(|| SsresfError::MissingNet("clk".into()))?;
        let reset = netlist.net_by_name("rst_n");
        Ok(Dut {
            netlist,
            clock,
            reset,
        })
    }

    /// The wrapped netlist.
    pub fn netlist(&self) -> &'a FlatNetlist {
        self.netlist
    }

    /// The clock net.
    pub fn clock(&self) -> NetId {
        self.clock
    }

    /// Runs the workload with the given faults (whose cycles are relative
    /// to the first post-reset cycle).
    ///
    /// # Errors
    ///
    /// Propagates engine construction failures.
    pub fn run(
        &self,
        kind: EngineKind,
        workload: &Workload,
        faults: &[Fault],
    ) -> Result<RunOutcome, SsresfError> {
        match kind {
            EngineKind::EventDriven => {
                let engine = EventDrivenEngine::new(self.netlist, self.clock)?;
                self.drive(engine, workload, faults, |e| e.events_processed())
            }
            EngineKind::Levelized => {
                let engine = LevelizedEngine::new(self.netlist, self.clock)?;
                self.drive(engine, workload, faults, |e| e.cells_evaluated())
            }
        }
    }

    fn drive<E: Engine>(
        &self,
        mut engine: E,
        workload: &Workload,
        faults: &[Fault],
        work: impl Fn(&E) -> u64,
    ) -> Result<RunOutcome, SsresfError> {
        // Reset sequence.
        if let Some(rst) = self.reset {
            engine.poke(rst, Logic::Zero);
            for _ in 0..workload.reset_cycles {
                engine.step_cycle();
            }
            engine.poke(rst, Logic::One);
        }
        // Memory-image load happens after reset so that the first clock
        // edges never latch undefined write-enables into the array.
        let memory_cells: Vec<_> = self
            .netlist
            .iter_cells()
            .filter(|(_, c)| c.kind.is_memory_bit())
            .map(|(id, _)| id)
            .collect();
        for id in memory_cells {
            engine.set_cell_state(id, Logic::Zero);
        }

        // Schedule faults, shifted into absolute engine cycles.
        let offset = if self.reset.is_some() {
            workload.reset_cycles
        } else {
            0
        };
        for fault in faults {
            let shifted = match *fault {
                Fault::Seu(f) => Fault::Seu(SeuFault {
                    cycle: f.cycle + offset,
                    ..f
                }),
                Fault::Set(f) => Fault::Set(SetFault {
                    cycle: f.cycle + offset,
                    ..f
                }),
            };
            engine.schedule_fault(shifted);
        }

        // Observe all primary outputs.
        let outputs: Vec<NetId> = self.netlist.primary_outputs().to_vec();
        let names = outputs
            .iter()
            .map(|&n| self.netlist.net(n).name.clone())
            .collect();
        let mut trace = CycleTrace::new(names);
        for _ in 0..workload.run_cycles {
            engine.step_cycle();
            trace.push_row(engine.sample(&outputs));
        }
        Ok(RunOutcome {
            trace,
            activity_per_cycle: engine.activity_per_cycle(),
            work: work(&engine),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssresf_netlist::{CellKind, Design, ModuleBuilder, PortDir};

    fn counter_netlist() -> FlatNetlist {
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("ctr");
        let clk = mb.port("clk", PortDir::Input);
        let rst_n = mb.port("rst_n", PortDir::Input);
        let q0 = mb.port("q0", PortDir::Output);
        let nq = mb.net("nq");
        mb.cell("u_inv", CellKind::Inv, &[q0], &[nq]).unwrap();
        mb.cell("u_ff", CellKind::Dffr, &[clk, nq, rst_n], &[q0])
            .unwrap();
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        design.flatten().unwrap()
    }

    #[test]
    fn conventions_find_clock_and_reset() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        assert_eq!(flat.net(dut.clock()).name, "clk");
    }

    #[test]
    fn missing_clock_is_an_error() {
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("comb");
        let a = mb.port("a", PortDir::Input);
        let y = mb.port("y", PortDir::Output);
        mb.cell("u0", CellKind::Inv, &[a], &[y]).unwrap();
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        let flat = design.flatten().unwrap();
        assert!(matches!(
            Dut::from_conventions(&flat),
            Err(SsresfError::MissingNet(_))
        ));
    }

    #[test]
    fn both_engines_produce_identical_golden_traces() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let wl = Workload {
            reset_cycles: 2,
            run_cycles: 12,
        };
        let ev = dut.run(EngineKind::EventDriven, &wl, &[]).unwrap();
        let lv = dut.run(EngineKind::Levelized, &wl, &[]).unwrap();
        assert!(ev.trace.matches(&lv.trace));
        assert_eq!(ev.trace.len(), 12);
        assert!(ev.work > 0 && lv.work > 0);
    }

    #[test]
    fn fault_cycles_are_relative_to_post_reset_time() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let wl = Workload {
            reset_cycles: 4,
            run_cycles: 10,
        };
        let golden = dut.run(EngineKind::EventDriven, &wl, &[]).unwrap();
        let ff = flat.cell_by_name("u_ff").unwrap();
        let faulty = dut
            .run(
                EngineKind::EventDriven,
                &wl,
                &[Fault::Seu(SeuFault {
                    cell: ff,
                    cycle: 5,
                    offset: 0.1,
                })],
            )
            .unwrap();
        let diffs = golden.trace.diff(&faulty.trace);
        assert!(!diffs.is_empty());
        // The first divergence appears exactly at workload cycle 5.
        assert_eq!(diffs.iter().map(|d| d.cycle).min(), Some(5));
    }

    #[test]
    fn activity_is_normalized_per_cycle() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let out = dut
            .run(EngineKind::EventDriven, &Workload::default(), &[])
            .unwrap();
        let q0 = flat.net_by_name("q0").unwrap();
        // The toggler flips every cycle.
        assert!(out.activity_per_cycle[q0.index()] > 0.5);
    }
}
