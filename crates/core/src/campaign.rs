//! Fault-injection campaigns over sampled cells.
//!
//! For every cell in the fault-injection list the campaign generates one or
//! more single-particle faults (SEU for state-holding cells, SET with a
//! LET-dependent pulse width for combinational cells), re-simulates the
//! workload, and classifies the run as a soft error when the primary-output
//! trace diverges from the golden run — the paper's VCD-comparison loop.
//! Injections run in parallel across threads; results are deterministic
//! under the configured seed regardless of thread count.
//!
//! The golden run records engine-state checkpoints every
//! [`CampaignConfig::checkpoint_interval`] cycles; each injection then
//! restores the nearest checkpoint at or before its fault cycle instead of
//! re-simulating from reset, and — with [`CampaignConfig::early_stop`] —
//! terminates once its verdict is decided and its state has re-converged
//! with the golden run. Both fast paths are bit-identical to from-scratch
//! simulation by construction.

use crate::error::SsresfError;
use crate::progress::{CampaignProgress, Instrument, ProgressPhase, WorkerUtilization};
use crate::workload::{Dut, EngineKind, GoldenRun, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use ssresf_netlist::{CellId, CellKind, FlatNetlist, NetId};
use ssresf_radiation::{PulseWidthModel, RadiationEnvironment};
use ssresf_sim::{CycleTrace, EngineTelemetry, Fault, SetFault, SeuFault};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Campaign configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Workload length.
    pub workload: Workload,
    /// Particle environment (LET drives the SET pulse-width model).
    pub environment: RadiationEnvironment,
    /// Faults injected per sampled cell.
    pub injections_per_cell: usize,
    /// SET pulse-width model.
    pub pulse: PulseWidthModel,
    /// Base seed; per-cell streams derive from it.
    pub seed: u64,
    /// Simulation engine.
    pub engine: EngineKind,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Cycles between golden-run checkpoints that injection runs
    /// fast-forward from (0 disables checkpointing; every run then replays
    /// the workload from reset).
    #[serde(default = "default_checkpoint_interval")]
    pub checkpoint_interval: u64,
    /// Terminate a faulty run early once its verdict is decided and its
    /// engine state has re-converged with the golden run at a checkpoint
    /// boundary; the skipped tail is filled from the golden trace, so
    /// records are bit-identical either way.
    #[serde(default)]
    pub early_stop: bool,
    /// Pack fault instances into bit-parallel batches ([`Dut::run_batch`])
    /// instead of simulating them one scalar run at a time. Requires
    /// [`EngineKind::Levelized`] — the event-driven engine resolves
    /// sub-cycle SET timing that cannot be lane-packed. Records are
    /// bit-identical to scalar-mode records for the same seed and config,
    /// across any thread count.
    #[serde(default)]
    pub batching: bool,
    /// Lanes per bit-parallel batch: one of
    /// [`ssresf_sim::SUPPORTED_LANE_COUNTS`] (64/256/512, i.e. `LaneWord`
    /// chunk widths 1/4/8). One lane always carries the golden run, so a
    /// batch packs up to `batch_lanes - 1` faults. Only meaningful with
    /// [`batching`](CampaignConfig::batching).
    #[serde(default = "default_batch_lanes")]
    pub batch_lanes: usize,
    /// Collapse equivalent faults onto one representative lane: SEUs on
    /// the same flip-flop bit and cycle, and SETs whose nets reach the
    /// same point through single-fanout buffer chains on the same cycle,
    /// share one simulated lane; the verdict scatters back to every
    /// collapsed record. Exact (not approximate) under the levelized
    /// cycle-wide fault semantics, so records stay bit-identical. Requires
    /// [`batching`](CampaignConfig::batching).
    #[serde(default)]
    pub collapse_faults: bool,
    /// Retire lanes early and refill them mid-sweep from the pending fault
    /// queue ([`Dut::run_batch_queue`]) instead of idling retired lanes
    /// until the batch-wide stop. Records stay bit-identical. Requires
    /// [`batching`](CampaignConfig::batching).
    #[serde(default)]
    pub lane_refill: bool,
}

fn default_checkpoint_interval() -> u64 {
    10
}

fn default_batch_lanes() -> usize {
    ssresf_sim::WORD_LANES
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            workload: Workload::default(),
            environment: RadiationEnvironment::geo_transfer(),
            injections_per_cell: 1,
            pulse: PulseWidthModel::standard(),
            seed: 3,
            engine: EngineKind::EventDriven,
            threads: 0,
            checkpoint_interval: default_checkpoint_interval(),
            early_stop: false,
            batching: false,
            batch_lanes: default_batch_lanes(),
            collapse_faults: false,
            lane_refill: false,
        }
    }
}

/// The outcome of one injection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InjectionRecord {
    /// The struck cell.
    pub cell: CellId,
    /// The injected fault (workload-relative cycle).
    pub fault: Fault,
    /// Whether the primary outputs diverged from the golden run.
    pub soft_error: bool,
    /// Number of divergent (cycle, signal) samples.
    pub divergences: usize,
}

/// Deterministic event counters accumulated over a whole campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignTelemetry {
    /// Engine-level counters summed over the golden run and every
    /// injection run.
    pub engine: EngineTelemetry,
    /// Injection runs that fast-forwarded from a golden checkpoint.
    pub checkpoint_restores: u64,
    /// Injection runs whose simulated tail was truncated by early stop.
    pub early_stop_truncations: u64,
    /// Faults answered by an equivalence-class representative lane instead
    /// of a lane of their own (fault-list collapsing).
    #[serde(default)]
    pub collapsed_faults: u64,
    /// Retired lanes rewritten mid-sweep with a fresh pending fault
    /// (queued batching).
    #[serde(default)]
    pub lane_refills: u64,
}

/// Per-cell injection statistics (see
/// [`CampaignOutcome::per_cell_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellErrorStats {
    /// Injections performed into the cell.
    pub injections: usize,
    /// Injections that produced a soft error.
    pub errors: usize,
}

impl CellErrorStats {
    /// Observed soft-error probability (0 when the cell was never
    /// injected).
    pub fn probability(&self) -> f64 {
        if self.injections == 0 {
            0.0
        } else {
            self.errors as f64 / self.injections as f64
        }
    }
}

/// Aggregate campaign outcome.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Golden (fault-free) output trace.
    pub golden: CycleTrace,
    /// Per-net toggle activity of the golden run.
    pub golden_activity: Vec<f64>,
    /// One record per injection, ordered by cell then injection index.
    pub records: Vec<InjectionRecord>,
    /// Wall-clock time spent simulating (golden + all injections).
    pub simulation_time: Duration,
    /// Wall-clock time of the golden run alone (checkpoints included).
    pub golden_time: Duration,
    /// Engine work proxy accumulated over all runs.
    pub total_work: u64,
    /// Deterministic event counters accumulated over all runs.
    pub telemetry: CampaignTelemetry,
}

impl CampaignOutcome {
    /// Number of injections that produced a soft error.
    pub fn soft_errors(&self) -> usize {
        self.records.iter().filter(|r| r.soft_error).count()
    }

    /// Cells that produced at least one soft error.
    pub fn sensitive_cells(&self) -> Vec<CellId> {
        let mut cells: Vec<CellId> = self
            .records
            .iter()
            .filter(|r| r.soft_error)
            .map(|r| r.cell)
            .collect();
        cells.sort();
        cells.dedup();
        cells
    }

    /// Observed soft-error probability of one cell (errors / injections),
    /// or `None` if the cell was never injected.
    ///
    /// Scans all records; callers that need many cells should build
    /// [`per_cell_stats`](CampaignOutcome::per_cell_stats) once instead.
    pub fn cell_error_probability(&self, cell: CellId) -> Option<f64> {
        let mut total = 0usize;
        let mut errors = 0usize;
        for r in &self.records {
            if r.cell == cell {
                total += 1;
                if r.soft_error {
                    errors += 1;
                }
            }
        }
        if total == 0 {
            None
        } else {
            Some(errors as f64 / total as f64)
        }
    }

    /// Per-cell `(injections, errors)` statistics, built in one pass over
    /// the records.
    pub fn per_cell_stats(&self) -> BTreeMap<CellId, CellErrorStats> {
        let mut stats: BTreeMap<CellId, CellErrorStats> = BTreeMap::new();
        for r in &self.records {
            let entry = stats.entry(r.cell).or_default();
            entry.injections += 1;
            if r.soft_error {
                entry.errors += 1;
            }
        }
        stats
    }
}

/// Generates the faults for one cell (deterministic per cell and seed).
pub fn faults_for_cell(dut: &Dut<'_>, cell: CellId, config: &CampaignConfig) -> Vec<Fault> {
    let mut rng = StdRng::seed_from_u64(
        config.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(cell.0) + 1)),
    );
    let info = dut.netlist().cell(cell);
    (0..config.injections_per_cell)
        .map(|_| {
            let cycle = rng.gen_range(0..config.workload.run_cycles.max(1));
            let offset = rng.gen::<f64>() * 0.999;
            if info.kind.is_sequential() {
                Fault::Seu(SeuFault {
                    cell,
                    cycle,
                    offset,
                })
            } else {
                Fault::Set(SetFault {
                    net: info.output,
                    cycle,
                    offset,
                    width: config
                        .pulse
                        .sample_width(config.environment.let_value, &mut rng),
                })
            }
        })
        .collect()
}

/// Runs the full campaign over `cells`.
///
/// # Errors
///
/// Propagates configuration and simulation failures.
pub fn run_campaign(
    dut: &Dut<'_>,
    cells: &[CellId],
    config: &CampaignConfig,
) -> Result<CampaignOutcome, SsresfError> {
    run_campaign_with(dut, cells, config, &Instrument::default())
}

/// The per-run data a worker keeps besides the record itself.
struct JobResult {
    record: InjectionRecord,
    work: u64,
    engine: EngineTelemetry,
    resumed_from: Option<u64>,
    early_stopped: bool,
}

/// Per-worker statistics the batched path reports beyond its job results.
#[derive(Default, Clone, Copy)]
struct BatchChunkStats {
    collapsed: u64,
    refills: u64,
}

/// Precomputed canonical SET sites for fault-list collapsing.
///
/// Collapsing is only ever applied to *exactly* equivalent faults — faults
/// that provably produce identical engine state on every cycle under the
/// levelized (cycle-accurate) fault semantics, so the scattered-back
/// records stay bit-identical to running every fault in its own lane:
///
/// - SEUs on the same sequential cell and cycle: `disturb` ignores the
///   sub-cycle offset entirely.
/// - SETs on the same cycle whose nets reach the same point through
///   single-fanout `Buf` chains: the levelized engine models a SET as a
///   cycle-wide inversion of the net, and an inversion on a buffer's
///   *only* input is observable solely as the same inversion on the
///   buffer's output — including under unknowns, since `Buf` propagates
///   `X` unchanged. Inverter chains are deliberately left alone: `Buf` is
///   the one cell whose transfer function is the identity, which keeps the
///   dominance argument a two-line proof instead of a per-kind case split.
struct CollapseIndex {
    /// For each net: the far end of its single-fanout `Buf` chain, or the
    /// net itself when no such chain leaves it.
    canonical_net: Vec<u32>,
}

impl CollapseIndex {
    fn build(netlist: &FlatNetlist) -> Self {
        let nets = netlist.nets();
        let mut is_po = vec![false; nets.len()];
        for &po in netlist.primary_outputs() {
            is_po[po.index()] = true;
        }
        // One hop down a candidate chain: the net must not be observable
        // (a primary output), must feed exactly one input pin, and that
        // pin must belong to a `Buf`.
        let step = |n: usize| -> Option<usize> {
            let loads = netlist.net(NetId(n as u32)).loads;
            if is_po[n] || loads.len() != 1 {
                return None;
            }
            let reader = netlist.cell(loads[0].0);
            (reader.kind == CellKind::Buf).then(|| reader.output.index())
        };
        let mut canonical: Vec<u32> = (0..nets.len() as u32).collect();
        for (n, slot) in canonical.iter_mut().enumerate() {
            let mut cur = n;
            // The flattened netlist is acyclic through combinational
            // cells, so the walk terminates.
            while let Some(next) = step(cur) {
                cur = next;
            }
            *slot = cur as u32;
        }
        Self {
            canonical_net: canonical,
        }
    }

    /// Equivalence-class key: faults with equal keys are interchangeable
    /// in a batch lane.
    fn key(&self, fault: &Fault) -> (u8, u32, u64) {
        match fault {
            Fault::Seu(f) => (0, f.cell.0, f.cycle),
            Fault::Set(f) => (1, self.canonical_net[f.net.index()], f.cycle),
        }
    }
}

/// Partitions `order` (indices into a job slice, already `(cycle, index)`
/// sorted) into equivalence classes. Returns parallel vectors: the
/// representative job index per class (first member in sorted order, so
/// the list stays cycle-sorted) and every member of each class.
fn collapse_classes(
    jobs: &[(CellId, Fault)],
    order: &[usize],
    collapse: Option<&CollapseIndex>,
) -> (Vec<usize>, Vec<Vec<usize>>) {
    let Some(index) = collapse else {
        return (order.to_vec(), order.iter().map(|&i| vec![i]).collect());
    };
    let mut class_of: BTreeMap<(u8, u32, u64), usize> = BTreeMap::new();
    let mut reps: Vec<usize> = Vec::new();
    let mut members: Vec<Vec<usize>> = Vec::new();
    for &i in order {
        match class_of.entry(index.key(&jobs[i].1)) {
            std::collections::btree_map::Entry::Occupied(e) => {
                members[*e.get()].push(i);
            }
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(reps.len());
                reps.push(i);
                members.push(vec![i]);
            }
        }
    }
    (reps, members)
}

/// Runs one worker's job chunk through the bit-parallel batched path at
/// compile-time lane width `W` (64·`W` lanes), with optional fault-list
/// collapsing and early-lane-retirement refilling. Results scatter back
/// into `mine` at each job's original slot, so record order — and the
/// records themselves — stay identical to scalar mode.
#[allow(clippy::too_many_arguments)]
fn run_batched_chunk<const W: usize>(
    dut: &Dut<'_>,
    config: &CampaignConfig,
    golden_run: &GoldenRun,
    collapse: Option<&CollapseIndex>,
    job_chunk: &[(CellId, Fault)],
    mine: &mut [Option<JobResult>],
    cancelled: &dyn Fn() -> bool,
    note_done: &dyn Fn(bool),
    jobs_done: &mut usize,
    occupancy: &mut Vec<u64>,
) -> Result<BatchChunkStats, SsresfError> {
    // Sorting by fault cycle lets batch-mates share one fast-forward
    // checkpoint and makes equivalence classes contiguous.
    let mut by_cycle: Vec<usize> = (0..job_chunk.len()).collect();
    by_cycle.sort_by_key(|&i| (job_chunk[i].1.cycle(), i));
    let (reps, members) = collapse_classes(job_chunk, &by_cycle, collapse);
    let mut stats = BatchChunkStats {
        collapsed: (job_chunk.len() - reps.len()) as u64,
        refills: 0,
    };

    // Writes one simulated verdict back to every member of its class,
    // splitting the batch-shared work evenly via the (k, per, rem) counter
    // so per-injection work sums stay exact.
    let scatter = |mine: &mut [Option<JobResult>],
                   class: usize,
                   soft_error: bool,
                   divergences: usize,
                   engine: EngineTelemetry,
                   resumed_from: Option<u64>,
                   early_stopped: bool,
                   k: &mut u64,
                   per: u64,
                   rem: u64,
                   jobs_done: &mut usize| {
        for &i in &members[class] {
            let (cell, fault) = job_chunk[i];
            mine[i] = Some(JobResult {
                record: InjectionRecord {
                    cell,
                    fault,
                    soft_error,
                    divergences,
                },
                work: per + u64::from(*k < rem),
                engine: if *k == 0 {
                    engine
                } else {
                    EngineTelemetry::default()
                },
                resumed_from,
                early_stopped,
            });
            *k += 1;
            *jobs_done += 1;
            note_done(soft_error);
        }
    };

    if config.lane_refill {
        // One queued run retires lanes the moment their verdict is final
        // and refills them mid-sweep, so the whole chunk is a single
        // (multi-sweep) engine session. The queue polls `cancelled`
        // between lane-refill rounds, so a cancellation lands mid-batch;
        // partially-judged faults keep no verdict (their results are
        // discarded by the cancellation anyway).
        if cancelled() {
            return Ok(stats);
        }
        let faults: Vec<Fault> = reps.iter().map(|&i| job_chunk[i].1).collect();
        let out =
            dut.run_batch_queue::<W>(&config.workload, &faults, golden_run, Some(cancelled))?;
        occupancy.extend(out.occupancy.iter().copied());
        stats.refills = out.refills;
        let n = job_chunk.len() as u64;
        let per = out.work / n;
        let rem = out.work % n;
        let mut k = 0u64;
        for (class, fault_outcome) in out.faults.iter().enumerate() {
            let Some(fault_outcome) = fault_outcome else {
                continue;
            };
            scatter(
                mine,
                class,
                fault_outcome.soft_error,
                fault_outcome.divergences,
                out.engine,
                fault_outcome.resumed_from,
                fault_outcome.early_stopped,
                &mut k,
                per,
                rem,
                jobs_done,
            );
        }
    } else {
        // Fixed-size batches of class representatives (lane 0 stays
        // golden, so a batch carries up to `64·W - 1` faults).
        let classes: Vec<usize> = (0..reps.len()).collect();
        for batch_classes in classes.chunks(W * ssresf_sim::WORD_LANES - 1) {
            if cancelled() {
                break;
            }
            let faults: Vec<Fault> = batch_classes
                .iter()
                .map(|&c| job_chunk[reps[c]].1)
                .collect();
            let batch =
                dut.run_batch::<W>(&config.workload, &faults, golden_run, config.early_stop)?;
            occupancy.push(batch_classes.len() as u64);
            let n: u64 = batch_classes.iter().map(|&c| members[c].len() as u64).sum();
            let per = batch.work / n;
            let rem = batch.work % n;
            let mut k = 0u64;
            for (&class, lane) in batch_classes.iter().zip(batch.lanes.iter()) {
                scatter(
                    mine,
                    class,
                    lane.soft_error,
                    lane.divergences,
                    batch.engine,
                    batch.resumed_from,
                    batch.early_stopped,
                    &mut k,
                    per,
                    rem,
                    jobs_done,
                );
            }
        }
    }
    Ok(stats)
}

/// [`run_campaign`] with observability hooks attached.
///
/// `hooks.progress` receives a `Start` report after the golden run, a
/// `Heartbeat` every [`Instrument::heartbeat_every`] completed injections,
/// and a final `Finished` report with per-worker utilization.
/// `hooks.metrics` receives campaign counters (`campaign.*`), the
/// `campaign.work_per_injection` histogram, the `stage.golden` /
/// `stage.injections` timings and per-worker gauges. Hooks are
/// observational only: records are bit-identical with or without them.
///
/// # Errors
///
/// Propagates configuration and simulation failures; notably
/// [`SsresfError::Config`] for a zero-injection or zero-cycle workload.
pub fn run_campaign_with(
    dut: &Dut<'_>,
    cells: &[CellId],
    config: &CampaignConfig,
    hooks: &Instrument<'_>,
) -> Result<CampaignOutcome, SsresfError> {
    if config.injections_per_cell == 0 {
        return Err(SsresfError::Config("injections_per_cell is 0".into()));
    }
    // Pre-generate every fault so worker threads only simulate.
    let jobs: Vec<(CellId, Fault)> = cells
        .iter()
        .flat_map(|&cell| {
            faults_for_cell(dut, cell, config)
                .into_iter()
                .map(move |f| (cell, f))
        })
        .collect();
    run_injection_jobs(dut, jobs, config, hooks)
}

/// Runs a pre-generated injection job list: golden run, parallel workers,
/// telemetry. This is the execution engine shared by the static-environment
/// campaign ([`run_campaign_with`]), mission campaigns
/// ([`run_mission_campaign_with`](crate::mission::run_mission_campaign_with))
/// and differential mitigation runs — any caller that can phrase its fault
/// schedule as `(cell, fault)` pairs gets the checkpointing, early-stop,
/// batching and determinism machinery unchanged.
///
/// Records come back in job order regardless of thread count.
///
/// # Errors
///
/// Propagates configuration and simulation failures.
pub fn run_injection_jobs(
    dut: &Dut<'_>,
    jobs: Vec<(CellId, Fault)>,
    config: &CampaignConfig,
    hooks: &Instrument<'_>,
) -> Result<CampaignOutcome, SsresfError> {
    validate_job_config(config)?;
    let started = Instant::now();
    // The golden run doubles as the checkpoint source workers fork from.
    let golden = dut.run_golden_with_checkpoints(
        config.engine,
        &config.workload,
        config.checkpoint_interval,
    )?;
    let golden_time = started.elapsed();
    run_jobs_with_golden(dut, jobs, config, hooks, &golden, golden_time, true)
}

/// [`run_injection_jobs`] against a caller-supplied golden run.
///
/// The active-learning loop injects cells over many rounds against the
/// same workload; simulating the golden reference once and passing it here
/// removes the per-round golden cost. The returned outcome charges neither
/// golden time nor golden work (both were paid once by the caller):
/// `golden_time` is zero, and `total_work` / engine telemetry cover only
/// the injections of this call. Records are bit-identical to
/// [`run_injection_jobs`] with the same jobs and config.
///
/// `golden` must come from
/// [`Dut::run_golden_with_checkpoints`](crate::workload::Dut::run_golden_with_checkpoints)
/// with the same engine, workload and checkpoint interval as `config`;
/// a mismatched golden run yields meaningless divergence counts.
///
/// # Errors
///
/// Propagates configuration and simulation failures.
pub fn run_injection_jobs_with_golden(
    dut: &Dut<'_>,
    jobs: Vec<(CellId, Fault)>,
    config: &CampaignConfig,
    golden: &GoldenRun,
    hooks: &Instrument<'_>,
) -> Result<CampaignOutcome, SsresfError> {
    validate_job_config(config)?;
    run_jobs_with_golden(dut, jobs, config, hooks, golden, Duration::ZERO, false)
}

/// Shared configuration validation for the job-level entry points.
fn validate_job_config(config: &CampaignConfig) -> Result<(), SsresfError> {
    if config.workload.run_cycles == 0 {
        return Err(SsresfError::Config(
            "workload run_cycles is 0: nothing to observe or inject into".into(),
        ));
    }
    if config.batching && config.engine != EngineKind::Levelized {
        return Err(SsresfError::Config(
            "batching requires the levelized engine: the event-driven engine \
             resolves sub-cycle SET timing that cannot be lane-packed"
                .into(),
        ));
    }
    if config.batching && !ssresf_sim::SUPPORTED_LANE_COUNTS.contains(&config.batch_lanes) {
        return Err(SsresfError::Config(format!(
            "batch_lanes must be one of {:?}, got {}",
            ssresf_sim::SUPPORTED_LANE_COUNTS,
            config.batch_lanes
        )));
    }
    if !config.batching && (config.collapse_faults || config.lane_refill) {
        return Err(SsresfError::Config(
            "collapse_faults and lane_refill are batching optimizations and \
             require batching"
                .into(),
        ));
    }
    Ok(())
}

/// The execution engine behind both job-level entry points. When
/// `charge_golden` is false the golden run's work and engine counters are
/// excluded from the outcome (the caller paid them once up front).
fn run_jobs_with_golden(
    dut: &Dut<'_>,
    jobs: Vec<(CellId, Fault)>,
    config: &CampaignConfig,
    hooks: &Instrument<'_>,
    golden: &GoldenRun,
    golden_time: Duration,
    charge_golden: bool,
) -> Result<CampaignOutcome, SsresfError> {
    let started = Instant::now();
    let threads = if config.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        config.threads
    };
    let threads = threads.min(jobs.len().max(1));

    let golden_run = golden;
    let golden_trace = &golden.outcome.trace;
    let mut results: Vec<Option<JobResult>> = Vec::with_capacity(jobs.len());
    results.resize_with(jobs.len(), || None);
    let error: std::sync::Mutex<Option<SsresfError>> = std::sync::Mutex::new(None);
    // Raised on the first failure so sibling workers stop simulating
    // chunks whose results will be discarded anyway.
    let cancel = AtomicBool::new(false);
    // The caller's cancellation flag (e.g. a serve coordinator relaying a
    // client cancel); polled alongside the internal one.
    let external_cancel = hooks.cancel;

    // Shared progress state (approximate during the run; the Finished
    // report re-derives exact totals from the records).
    let total = jobs.len();
    let completed = AtomicUsize::new(0);
    let soft_errors = AtomicUsize::new(0);
    let heartbeat = hooks.heartbeat();
    let injections_started = Instant::now();
    if let Some(sink) = hooks.progress {
        sink.report(&CampaignProgress {
            phase: ProgressPhase::Start,
            completed: 0,
            total,
            soft_errors: 0,
            elapsed: Duration::ZERO,
            workers: Vec::new(),
        });
    }

    let mut worker_stats: Vec<WorkerUtilization> = Vec::new();
    let mut batch_occupancy: Vec<u64> = Vec::new();
    let mut collapsed_faults = 0u64;
    let mut lane_refills = 0u64;
    // Shared by every worker; cheap to build (one pass over the netlist).
    let collapse_index = config
        .collapse_faults
        .then(|| CollapseIndex::build(dut.netlist()));
    let collapse = collapse_index.as_ref();
    std::thread::scope(|scope| {
        let mut remaining: &mut [Option<JobResult>] = &mut results;
        let chunk = jobs.len().div_ceil(threads).max(1);
        let mut handles = Vec::new();
        for (worker, job_chunk) in jobs.chunks(chunk).enumerate() {
            let (mine, rest) = remaining.split_at_mut(job_chunk.len().min(remaining.len()));
            remaining = rest;
            let error = &error;
            let cancel = &cancel;
            let completed = &completed;
            let soft_errors = &soft_errors;
            let progress = hooks.progress;
            handles.push(scope.spawn(move || {
                let worker_started = Instant::now();
                let mut jobs_done = 0usize;
                let mut occupancy: Vec<u64> = Vec::new();
                let note_done = |soft_error: bool| {
                    if soft_error {
                        soft_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                    if let Some(sink) = progress {
                        if done.is_multiple_of(heartbeat) && done < total {
                            sink.report(&CampaignProgress {
                                phase: ProgressPhase::Heartbeat,
                                completed: done,
                                total,
                                soft_errors: soft_errors.load(Ordering::Relaxed),
                                elapsed: injections_started.elapsed(),
                                workers: Vec::new(),
                            });
                        }
                    }
                };
                let fail = |e: SsresfError| {
                    cancel.store(true, Ordering::Relaxed);
                    let mut guard = error.lock().expect("mutex poisoned");
                    if guard.is_none() {
                        *guard = Some(e);
                    }
                };
                // A worker stops on the internal flag (a sibling failed) or
                // the caller-provided external cancellation flag.
                let is_cancelled = || {
                    cancel.load(Ordering::Relaxed)
                        || external_cancel.is_some_and(|c| c.load(Ordering::Relaxed))
                };
                let mut stats = BatchChunkStats::default();
                if config.batching {
                    // Dispatch the configured lane count to a compile-time
                    // width so the hot loops stay monomorphized over
                    // fixed-size chunk arrays.
                    let run = match config.batch_lanes {
                        256 => run_batched_chunk::<4>,
                        512 => run_batched_chunk::<8>,
                        _ => run_batched_chunk::<1>,
                    };
                    match run(
                        dut,
                        config,
                        golden_run,
                        collapse,
                        job_chunk,
                        mine,
                        &is_cancelled,
                        &note_done,
                        &mut jobs_done,
                        &mut occupancy,
                    ) {
                        Ok(s) => stats = s,
                        Err(e) => fail(e),
                    }
                } else {
                    for ((cell, fault), slot) in job_chunk.iter().zip(mine.iter_mut()) {
                        if is_cancelled() {
                            break;
                        }
                        // `resume` falls back to a from-scratch run when
                        // checkpointing is disabled.
                        let run = dut.resume(
                            config.engine,
                            &config.workload,
                            std::slice::from_ref(fault),
                            golden_run,
                            config.early_stop,
                        );
                        match run {
                            Ok(outcome) => {
                                let diffs = golden_trace.diff(&outcome.trace);
                                let soft_error = !diffs.is_empty();
                                *slot = Some(JobResult {
                                    record: InjectionRecord {
                                        cell: *cell,
                                        fault: *fault,
                                        soft_error,
                                        divergences: diffs.len(),
                                    },
                                    work: outcome.work,
                                    engine: outcome.engine,
                                    resumed_from: outcome.resumed_from,
                                    early_stopped: outcome.early_stopped,
                                });
                                jobs_done += 1;
                                note_done(soft_error);
                            }
                            Err(e) => {
                                fail(e);
                                break;
                            }
                        }
                    }
                }
                (
                    WorkerUtilization {
                        worker,
                        jobs: jobs_done,
                        busy: worker_started.elapsed(),
                    },
                    occupancy,
                    stats,
                )
            }));
        }
        for handle in handles {
            let (stats, occupancy, chunk_stats) = handle.join().expect("campaign worker panicked");
            worker_stats.push(stats);
            batch_occupancy.extend(occupancy);
            collapsed_faults += chunk_stats.collapsed;
            lane_refills += chunk_stats.refills;
        }
    });

    if let Some(e) = error.into_inner().expect("mutex poisoned") {
        return Err(e);
    }
    // An external cancellation leaves partial results behind; report the
    // cancellation instead of a partial outcome (simulation failures above
    // take precedence).
    if external_cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
        return Err(SsresfError::Cancelled);
    }
    let mut records = Vec::with_capacity(jobs.len());
    let mut work_per_injection = Vec::with_capacity(jobs.len());
    let mut total_work = if charge_golden {
        golden.outcome.work
    } else {
        0
    };
    let mut telemetry = CampaignTelemetry {
        engine: if charge_golden {
            golden.outcome.engine
        } else {
            EngineTelemetry::default()
        },
        checkpoint_restores: 0,
        early_stop_truncations: 0,
        collapsed_faults,
        lane_refills,
    };
    for slot in results {
        let result = slot.expect("worker completed without error");
        records.push(result.record);
        work_per_injection.push(result.work);
        total_work += result.work;
        telemetry.engine.accumulate(result.engine);
        if result.resumed_from.is_some() {
            telemetry.checkpoint_restores += 1;
        }
        if result.early_stopped {
            telemetry.early_stop_truncations += 1;
        }
    }

    let simulation_time = golden_time + started.elapsed();
    if let Some(sink) = hooks.progress {
        sink.report(&CampaignProgress {
            phase: ProgressPhase::Finished,
            completed: records.len(),
            total,
            soft_errors: records.iter().filter(|r| r.soft_error).count(),
            elapsed: injections_started.elapsed(),
            workers: worker_stats.clone(),
        });
    }
    if let Some(metrics) = hooks.metrics {
        record_campaign_metrics(
            metrics,
            &records,
            &work_per_injection,
            &telemetry,
            total_work,
            golden_time,
            simulation_time,
            threads,
            &worker_stats,
            &batch_occupancy,
            config.batching,
        );
    }

    Ok(CampaignOutcome {
        golden: golden.outcome.trace.clone(),
        golden_activity: golden.outcome.activity_per_cycle.clone(),
        records,
        simulation_time,
        golden_time,
        total_work,
        telemetry,
    })
}

/// Publishes one finished campaign into `metrics`.
///
/// Counters and histograms carry only deterministic quantities;
/// wall-clock-derived values go to `timings_s` and suffix-marked gauges so
/// [`MetricsRegistry::to_json_deterministic`] exports stay byte-identical
/// across runs of the same seed.
///
/// [`MetricsRegistry::to_json_deterministic`]: ssresf_telemetry::MetricsRegistry::to_json_deterministic
#[allow(clippy::too_many_arguments)]
fn record_campaign_metrics(
    metrics: &ssresf_telemetry::MetricsRegistry,
    records: &[InjectionRecord],
    work_per_injection: &[u64],
    telemetry: &CampaignTelemetry,
    total_work: u64,
    golden_time: Duration,
    simulation_time: Duration,
    threads: usize,
    worker_stats: &[WorkerUtilization],
    batch_occupancy: &[u64],
    batching: bool,
) {
    metrics.counter_add("campaign.injections.total", records.len() as u64);
    metrics.counter_add(
        "campaign.injections.soft_errors",
        records.iter().filter(|r| r.soft_error).count() as u64,
    );
    metrics.counter_add(
        "campaign.engine.events_processed",
        telemetry.engine.events_processed,
    );
    metrics.counter_add(
        "campaign.engine.cells_evaluated",
        telemetry.engine.cells_evaluated,
    );
    metrics.counter_add(
        "campaign.engine.delta_cycles",
        telemetry.engine.delta_cycles,
    );
    metrics.counter_add(
        "campaign.engine.wheel_advances",
        telemetry.engine.wheel_advances,
    );
    metrics.counter_add("campaign.engine.word_evals", telemetry.engine.word_evals);
    metrics.counter_add(
        "campaign.checkpoint.restores",
        telemetry.checkpoint_restores,
    );
    metrics.counter_add(
        "campaign.early_stop.truncations",
        telemetry.early_stop_truncations,
    );
    metrics.counter_add("campaign.work.total", total_work);
    // Batched-mode-only counters: emitted even when zero so the batched
    // key set is stable across configs, but absent in scalar mode.
    if batching {
        metrics.counter_add(
            "campaign.batch.collapsed_faults",
            telemetry.collapsed_faults,
        );
        metrics.counter_add("campaign.batch.lane_refills", telemetry.lane_refills);
    }
    for &work in work_per_injection {
        metrics.observe("campaign.work_per_injection", work as f64);
    }
    // Lanes filled per bit-parallel batch; absent entirely in scalar mode
    // so the telemetry key set keeps distinguishing the two paths.
    for &filled in batch_occupancy {
        metrics.observe("campaign.batch_occupancy", filled as f64);
    }
    metrics.gauge_set("campaign.threads", threads as f64);
    let elapsed = simulation_time.as_secs_f64();
    let throughput = if elapsed > 0.0 {
        records.len() as f64 / elapsed
    } else {
        0.0
    };
    metrics.gauge_set("campaign.throughput_per_second", throughput);
    for w in worker_stats {
        metrics.gauge_set(&format!("campaign.worker.{}.jobs", w.worker), w.jobs as f64);
        metrics.gauge_set(
            &format!("campaign.worker.{}.busy_seconds", w.worker),
            w.busy.as_secs_f64(),
        );
        let utilization = if elapsed > 0.0 {
            (w.busy.as_secs_f64() / elapsed).min(1.0)
        } else {
            0.0
        };
        metrics.gauge_set(
            &format!("campaign.worker.{}.utilization", w.worker),
            utilization,
        );
    }
    metrics.timing_add("stage.golden", golden_time);
    metrics.timing_add(
        "stage.injections",
        simulation_time.saturating_sub(golden_time),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssresf_netlist::{CellKind, Design, FlatNetlist, ModuleBuilder, PortDir};

    /// A 4-bit counter: every FF is observable, so SEUs cause soft errors.
    fn counter_netlist() -> FlatNetlist {
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("ctr");
        let clk = mb.port("clk", PortDir::Input);
        let rst_n = mb.port("rst_n", PortDir::Input);
        let mut qs = Vec::new();
        for i in 0..4 {
            qs.push(mb.port(format!("q_{i}"), PortDir::Output));
        }
        let mut carry = qs[0];
        for i in 0..4 {
            let d = mb.net(format!("d_{i}"));
            if i == 0 {
                mb.cell("u_inc_0", CellKind::Inv, &[qs[0]], &[d]).unwrap();
            } else {
                mb.cell(format!("u_inc_{i}"), CellKind::Xor2, &[qs[i], carry], &[d])
                    .unwrap();
                if i + 1 < 4 {
                    let c = mb.net(format!("c_{i}"));
                    mb.cell(format!("u_car_{i}"), CellKind::And2, &[qs[i], carry], &[c])
                        .unwrap();
                    carry = c;
                }
            }
            mb.cell(
                format!("u_ff_{i}"),
                CellKind::Dffr,
                &[clk, d, rst_n],
                &[qs[i]],
            )
            .unwrap();
        }
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        design.flatten().unwrap()
    }

    #[test]
    fn seu_on_observable_ffs_always_errors() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let ffs: Vec<CellId> = flat
            .iter_cells()
            .filter(|(_, c)| c.kind.is_sequential())
            .map(|(id, _)| id)
            .collect();
        let config = CampaignConfig {
            workload: Workload {
                reset_cycles: 2,
                run_cycles: 20,
            },
            injections_per_cell: 2,
            ..CampaignConfig::default()
        };
        let outcome = run_campaign(&dut, &ffs, &config).unwrap();
        assert_eq!(outcome.records.len(), 8);
        // Counter bits are directly observable: every flip is a soft error.
        assert_eq!(outcome.soft_errors(), 8);
        assert_eq!(outcome.sensitive_cells().len(), 4);
        for &ff in &ffs {
            assert_eq!(outcome.cell_error_probability(ff), Some(1.0));
        }
        assert!(outcome.total_work > 0);
    }

    #[test]
    fn results_are_deterministic_across_thread_counts() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let cells: Vec<CellId> = flat.iter_cells().map(|(id, _)| id).collect();
        let base = CampaignConfig {
            workload: Workload {
                reset_cycles: 2,
                run_cycles: 15,
            },
            ..CampaignConfig::default()
        };
        let one = run_campaign(&dut, &cells, &CampaignConfig { threads: 1, ..base }).unwrap();
        let four = run_campaign(&dut, &cells, &CampaignConfig { threads: 4, ..base }).unwrap();
        assert_eq!(one.records, four.records);
    }

    #[test]
    fn external_cancellation_aborts_scalar_and_batched_campaigns() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let cells: Vec<CellId> = flat.iter_cells().map(|(id, _)| id).collect();
        let scalar = CampaignConfig {
            workload: Workload {
                reset_cycles: 2,
                run_cycles: 15,
            },
            threads: 1,
            ..CampaignConfig::default()
        };
        let batched = CampaignConfig {
            engine: EngineKind::Levelized,
            batching: true,
            batch_lanes: 64,
            collapse_faults: true,
            lane_refill: true,
            ..scalar
        };
        let flag = AtomicBool::new(true);
        let hooks = Instrument {
            cancel: Some(&flag),
            ..Instrument::default()
        };
        for config in [&scalar, &batched] {
            assert!(matches!(
                run_campaign_with(&dut, &cells, config, &hooks),
                Err(SsresfError::Cancelled)
            ));
        }
        // An unset flag is inert: records match the uninstrumented run.
        flag.store(false, Ordering::Relaxed);
        for config in [&scalar, &batched] {
            let plain = run_campaign(&dut, &cells, config).unwrap();
            let hooked = run_campaign_with(&dut, &cells, config, &hooks).unwrap();
            assert_eq!(plain.records, hooked.records);
        }
    }

    #[test]
    fn engines_agree_on_seu_verdicts() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let ffs: Vec<CellId> = flat
            .iter_cells()
            .filter(|(_, c)| c.kind.is_sequential())
            .map(|(id, _)| id)
            .collect();
        let base = CampaignConfig {
            workload: Workload {
                reset_cycles: 2,
                run_cycles: 20,
            },
            ..CampaignConfig::default()
        };
        let ev = run_campaign(
            &dut,
            &ffs,
            &CampaignConfig {
                engine: EngineKind::EventDriven,
                ..base
            },
        )
        .unwrap();
        let lv = run_campaign(
            &dut,
            &ffs,
            &CampaignConfig {
                engine: EngineKind::Levelized,
                ..base
            },
        )
        .unwrap();
        // SEU semantics are cycle-exact in both engines.
        let verdicts =
            |o: &CampaignOutcome| -> Vec<bool> { o.records.iter().map(|r| r.soft_error).collect() };
        assert_eq!(verdicts(&ev), verdicts(&lv));
    }

    /// A counter whose low bit feeds a 3-stage shift register; upsets in
    /// the shift stages flush out within 3 cycles, so faulty runs
    /// re-converge with the golden run (exercising early stop).
    fn shift_netlist() -> FlatNetlist {
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("shifter");
        let clk = mb.port("clk", PortDir::Input);
        let rst_n = mb.port("rst_n", PortDir::Input);
        let q0 = mb.port("q0", PortDir::Output);
        let tap = mb.port("tap", PortDir::Output);
        let nq = mb.net("nq");
        mb.cell("u_inv", CellKind::Inv, &[q0], &[nq]).unwrap();
        mb.cell("u_ff", CellKind::Dffr, &[clk, nq, rst_n], &[q0])
            .unwrap();
        let s1 = mb.net("s1");
        let s2 = mb.net("s2");
        mb.cell("u_sh_0", CellKind::Dffr, &[clk, q0, rst_n], &[s1])
            .unwrap();
        mb.cell("u_sh_1", CellKind::Dffr, &[clk, s1, rst_n], &[s2])
            .unwrap();
        mb.cell("u_sh_2", CellKind::Dffr, &[clk, s2, rst_n], &[tap])
            .unwrap();
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        design.flatten().unwrap()
    }

    #[test]
    fn checkpointed_records_match_from_scratch_and_reduce_work() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let cells: Vec<CellId> = flat.iter_cells().map(|(id, _)| id).collect();
        let base = CampaignConfig {
            injections_per_cell: 2,
            ..CampaignConfig::default()
        };
        let scratch = run_campaign(
            &dut,
            &cells,
            &CampaignConfig {
                checkpoint_interval: 0,
                ..base
            },
        )
        .unwrap();
        let checkpointed = run_campaign(
            &dut,
            &cells,
            &CampaignConfig {
                checkpoint_interval: 10,
                ..base
            },
        )
        .unwrap();
        assert_eq!(scratch.records, checkpointed.records);
        assert_eq!(scratch.golden, checkpointed.golden);
        // Fault cycles are uniform over the workload, so fast-forwarding
        // skips roughly half of every injection's cycles.
        assert!(
            checkpointed.total_work * 3 < scratch.total_work * 2,
            "checkpointing saved too little: {} vs {}",
            checkpointed.total_work,
            scratch.total_work
        );
    }

    #[test]
    fn early_stop_records_match_and_reduce_work_further() {
        let flat = shift_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let cells: Vec<CellId> = flat.iter_cells().map(|(id, _)| id).collect();
        let base = CampaignConfig {
            workload: Workload {
                reset_cycles: 2,
                run_cycles: 60,
            },
            injections_per_cell: 3,
            checkpoint_interval: 5,
            ..CampaignConfig::default()
        };
        let plain = run_campaign(&dut, &cells, &base).unwrap();
        let stopped = run_campaign(
            &dut,
            &cells,
            &CampaignConfig {
                early_stop: true,
                ..base
            },
        )
        .unwrap();
        assert_eq!(plain.records, stopped.records);
        // Shift-register upsets flush within 3 cycles, so early stop
        // truncates their tails at the next checkpoint boundary.
        assert!(
            stopped.total_work < plain.total_work,
            "early stop saved nothing: {} vs {}",
            stopped.total_work,
            plain.total_work
        );
    }

    #[test]
    fn zero_injections_rejected() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let config = CampaignConfig {
            injections_per_cell: 0,
            ..CampaignConfig::default()
        };
        assert!(run_campaign(&dut, &[], &config).is_err());
    }

    #[test]
    fn zero_cycle_workload_rejected() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let cells: Vec<CellId> = flat.iter_cells().map(|(id, _)| id).collect();
        let config = CampaignConfig {
            workload: Workload {
                reset_cycles: 2,
                run_cycles: 0,
            },
            ..CampaignConfig::default()
        };
        assert!(matches!(
            run_campaign(&dut, &cells, &config),
            Err(SsresfError::Config(_))
        ));
    }

    #[test]
    fn campaign_telemetry_counts_runs() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let cells: Vec<CellId> = flat.iter_cells().map(|(id, _)| id).collect();
        let outcome = run_campaign(
            &dut,
            &cells,
            &CampaignConfig {
                injections_per_cell: 2,
                checkpoint_interval: 10,
                ..CampaignConfig::default()
            },
        )
        .unwrap();
        // Every injection fast-forwarded from a golden checkpoint, and the
        // event-driven engine's counters accumulated across all runs.
        assert_eq!(
            outcome.telemetry.checkpoint_restores,
            outcome.records.len() as u64
        );
        assert!(outcome.telemetry.engine.events_processed > 0);
        assert!(outcome.telemetry.engine.wheel_advances > 0);
        assert_eq!(outcome.telemetry.engine.cells_evaluated, 0);
        assert!(outcome.golden_time <= outcome.simulation_time);
    }

    #[test]
    fn per_cell_stats_match_linear_scan() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let cells: Vec<CellId> = flat.iter_cells().map(|(id, _)| id).collect();
        let outcome = run_campaign(
            &dut,
            &cells,
            &CampaignConfig {
                injections_per_cell: 3,
                ..CampaignConfig::default()
            },
        )
        .unwrap();
        let stats = outcome.per_cell_stats();
        assert_eq!(stats.len(), cells.len());
        for (&cell, s) in &stats {
            assert_eq!(s.injections, 3);
            assert_eq!(Some(s.probability()), outcome.cell_error_probability(cell));
        }
        assert_eq!(CellErrorStats::default().probability(), 0.0);
    }

    /// Sink that keeps every report it receives.
    struct CollectingSink(std::sync::Mutex<Vec<CampaignProgress>>);

    impl crate::progress::ProgressSink for CollectingSink {
        fn report(&self, progress: &CampaignProgress) {
            self.0.lock().unwrap().push(progress.clone());
        }
    }

    #[test]
    fn progress_sink_totals_match_outcome() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let cells: Vec<CellId> = flat.iter_cells().map(|(id, _)| id).collect();
        let sink = CollectingSink(std::sync::Mutex::new(Vec::new()));
        let config = CampaignConfig {
            injections_per_cell: 2,
            threads: 2,
            ..CampaignConfig::default()
        };
        let hooks = Instrument {
            progress: Some(&sink),
            heartbeat_every: 3,
            ..Instrument::default()
        };
        let outcome = run_campaign_with(&dut, &cells, &config, &hooks).unwrap();
        let reports = sink.0.into_inner().unwrap();

        assert_eq!(reports.first().unwrap().phase, ProgressPhase::Start);
        let finished = reports.last().unwrap();
        assert_eq!(finished.phase, ProgressPhase::Finished);
        assert_eq!(finished.completed, outcome.records.len());
        assert_eq!(finished.total, outcome.records.len());
        assert_eq!(finished.soft_errors, outcome.soft_errors());
        assert_eq!(
            finished.workers.iter().map(|w| w.jobs).sum::<usize>(),
            outcome.records.len()
        );
        // Heartbeats fire every 3 completions and carry monotone progress.
        assert!(reports.iter().any(|r| r.phase == ProgressPhase::Heartbeat));
        for r in &reports {
            assert!(r.completed <= r.total);
            assert!(r.soft_errors <= r.completed);
        }
    }

    #[test]
    fn instrumentation_does_not_change_records() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let cells: Vec<CellId> = flat.iter_cells().map(|(id, _)| id).collect();
        let config = CampaignConfig {
            injections_per_cell: 2,
            threads: 2,
            ..CampaignConfig::default()
        };
        let plain = run_campaign(&dut, &cells, &config).unwrap();
        let metrics = ssresf_telemetry::MetricsRegistry::new();
        let instrumented =
            run_campaign_with(&dut, &cells, &config, &Instrument::with_metrics(&metrics)).unwrap();
        assert_eq!(plain.records, instrumented.records);
        assert_eq!(plain.golden, instrumented.golden);
        assert_eq!(
            metrics.counter("campaign.injections.total"),
            plain.records.len() as u64
        );
        assert_eq!(
            metrics.counter("campaign.injections.soft_errors"),
            plain.soft_errors() as u64
        );
        assert_eq!(metrics.counter("campaign.work.total"), plain.total_work);
        let hist = metrics.histogram("campaign.work_per_injection").unwrap();
        assert_eq!(hist.count, plain.records.len() as u64);
    }

    #[test]
    fn batched_records_match_scalar_across_modes_and_threads() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let cells: Vec<CellId> = flat.iter_cells().map(|(id, _)| id).collect();
        let base = CampaignConfig {
            workload: Workload {
                reset_cycles: 2,
                run_cycles: 30,
            },
            injections_per_cell: 3,
            engine: EngineKind::Levelized,
            ..CampaignConfig::default()
        };
        // Scratch, checkpointed and checkpointed+early-stop, each compared
        // against its scalar twin, across thread counts.
        for (interval, early_stop) in [(0u64, false), (10, false), (10, true)] {
            let mode = CampaignConfig {
                checkpoint_interval: interval,
                early_stop,
                ..base
            };
            let scalar =
                run_campaign(&dut, &cells, &CampaignConfig { threads: 1, ..mode }).unwrap();
            for threads in [1usize, 4] {
                let batched = run_campaign(
                    &dut,
                    &cells,
                    &CampaignConfig {
                        batching: true,
                        threads,
                        ..mode
                    },
                )
                .unwrap();
                assert_eq!(
                    scalar.records, batched.records,
                    "interval={interval} early_stop={early_stop} threads={threads}"
                );
                assert_eq!(scalar.golden, batched.golden);
                assert!(batched.telemetry.engine.word_evals > 0);
            }
        }
    }

    #[test]
    fn batched_early_stop_truncates_on_reconvergent_design() {
        let flat = shift_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        // Early stop releases a batch only when *every* lane re-converges,
        // so inject only into the shift stages (whose upsets flush within
        // 3 cycles) — a toggler upset would pin the batch forever.
        let cells: Vec<CellId> = flat
            .iter_cells()
            .filter(|(_, c)| c.name.starts_with("u_sh_"))
            .map(|(id, _)| id)
            .collect();
        assert_eq!(cells.len(), 3);
        let base = CampaignConfig {
            workload: Workload {
                reset_cycles: 2,
                run_cycles: 60,
            },
            injections_per_cell: 3,
            engine: EngineKind::Levelized,
            checkpoint_interval: 5,
            batching: true,
            threads: 1,
            ..CampaignConfig::default()
        };
        let plain = run_campaign(&dut, &cells, &base).unwrap();
        let stopped = run_campaign(
            &dut,
            &cells,
            &CampaignConfig {
                early_stop: true,
                ..base
            },
        )
        .unwrap();
        assert_eq!(plain.records, stopped.records);
        // Shift-register upsets flush within 3 cycles; the single batch
        // re-converges and stops at a checkpoint boundary.
        assert!(stopped.telemetry.early_stop_truncations > 0);
        assert!(
            stopped.total_work < plain.total_work,
            "batched early stop saved nothing: {} vs {}",
            stopped.total_work,
            plain.total_work
        );
    }

    /// Regression test: a batch mixing early- and late-cycle faults must
    /// not early-stop before the late fault's injection cycle. The gate in
    /// [`Dut::run_batch`] waits for the latest fault cycle; without it,
    /// the cycle-2 upset here re-converges (and the whole batch state
    /// equals golden) long before cycle 40, and the second fault would
    /// never fire.
    #[test]
    fn batched_early_stop_waits_for_late_faults_in_mixed_batches() {
        let flat = shift_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let workload = Workload {
            reset_cycles: 2,
            run_cycles: 60,
        };
        let golden = dut
            .run_golden_with_checkpoints(EngineKind::Levelized, &workload, 5)
            .unwrap();
        let seu = |name: &str, cycle: u64| {
            let (id, _) = flat.iter_cells().find(|(_, c)| c.name == name).unwrap();
            Fault::Seu(SeuFault {
                cell: id,
                cycle,
                offset: 0.5,
            })
        };
        let faults = [seu("u_sh_0", 2), seu("u_sh_2", 40)];
        let batch = dut
            .run_batch::<1>(&workload, &faults, &golden, true)
            .unwrap();
        // Both upsets hit observable shift stages; the second lane can
        // only report one if its cycle-40 injection actually ran.
        assert!(batch.lanes[0].soft_error);
        assert!(batch.lanes[1].soft_error);
        // The tail after the late upset flushes is still truncated.
        assert!(batch.early_stopped);
        // And each lane's verdict matches running its fault alone.
        for (i, fault) in faults.iter().enumerate() {
            let solo = dut
                .run_batch::<1>(&workload, std::slice::from_ref(fault), &golden, false)
                .unwrap();
            assert_eq!(batch.lanes[i].divergences, solo.lanes[0].divergences);
        }
    }

    #[test]
    fn collapsing_and_refill_keep_records_identical_across_widths() {
        // The shift register re-converges after an upset flushes, so
        // retired lanes actually free up for refilling (a counter would
        // diverge forever and never retire a lane).
        let flat = shift_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let cells: Vec<CellId> = flat.iter_cells().map(|(id, _)| id).collect();
        // 5 cells x 20 injections = 100 jobs: more than 63, so the 64-lane
        // queued path must refill retired lanes; a 0..30 cycle range over
        // 20 draws per cell makes same-site collisions (and therefore
        // collapsing) near-certain under the fixed seed.
        let base = CampaignConfig {
            workload: Workload {
                reset_cycles: 2,
                run_cycles: 30,
            },
            injections_per_cell: 20,
            engine: EngineKind::Levelized,
            checkpoint_interval: 5,
            ..CampaignConfig::default()
        };
        let scalar = run_campaign(&dut, &cells, &CampaignConfig { threads: 1, ..base }).unwrap();
        let mut saw_collapse = false;
        let mut saw_refill = false;
        for batch_lanes in ssresf_sim::SUPPORTED_LANE_COUNTS {
            for (collapse_faults, lane_refill) in [(true, false), (false, true), (true, true)] {
                for threads in [1usize, 3] {
                    let fast = run_campaign(
                        &dut,
                        &cells,
                        &CampaignConfig {
                            batching: true,
                            batch_lanes,
                            collapse_faults,
                            lane_refill,
                            threads,
                            ..base
                        },
                    )
                    .unwrap();
                    assert_eq!(
                        scalar.records, fast.records,
                        "lanes={batch_lanes} collapse={collapse_faults} \
                         refill={lane_refill} threads={threads}"
                    );
                    assert_eq!(scalar.golden, fast.golden);
                    saw_collapse |= fast.telemetry.collapsed_faults > 0;
                    saw_refill |= fast.telemetry.lane_refills > 0;
                    if !collapse_faults {
                        assert_eq!(fast.telemetry.collapsed_faults, 0);
                    }
                    if !lane_refill {
                        assert_eq!(fast.telemetry.lane_refills, 0);
                    }
                }
            }
        }
        assert!(saw_collapse, "no equivalent faults ever collapsed");
        assert!(saw_refill, "the queued path never refilled a retired lane");
    }

    /// A toggler feeding a two-buffer chain into a capture flop: SETs
    /// anywhere on the chain are exactly equivalent to a SET on the chain
    /// end, so they collapse to one lane per cycle.
    fn buffer_chain_netlist() -> FlatNetlist {
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("bufchain");
        let clk = mb.port("clk", PortDir::Input);
        let rst_n = mb.port("rst_n", PortDir::Input);
        let q0 = mb.port("q0", PortDir::Output);
        let tap = mb.port("tap", PortDir::Output);
        let nq = mb.net("nq");
        mb.cell("u_inv", CellKind::Inv, &[q0], &[nq]).unwrap();
        mb.cell("u_ff", CellKind::Dffr, &[clk, nq, rst_n], &[q0])
            .unwrap();
        let c1 = mb.net("c1");
        let c2 = mb.net("c2");
        mb.cell("u_buf_0", CellKind::Buf, &[q0], &[c1]).unwrap();
        mb.cell("u_buf_1", CellKind::Buf, &[c1], &[c2]).unwrap();
        mb.cell("u_cap", CellKind::Dffr, &[clk, c2, rst_n], &[tap])
            .unwrap();
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        design.flatten().unwrap()
    }

    #[test]
    fn collapse_index_canonicalizes_buffer_chains() {
        let flat = buffer_chain_netlist();
        let index = CollapseIndex::build(&flat);
        let net = |name: &str| flat.net_by_name(name).unwrap();
        // c1 feeds only u_buf_1, so it canonicalizes to the chain end c2.
        assert_eq!(index.canonical_net[net("c1").index()], net("c2").0);
        // c2 feeds a flop, not a buffer: it is its own canonical site.
        assert_eq!(index.canonical_net[net("c2").index()], net("c2").0);
        // q0 is a primary output (and fans out to two cells): observable
        // sites never collapse into their readers.
        assert_eq!(index.canonical_net[net("q0").index()], net("q0").0);
        // SETs across the chain on the same cycle share one key; cycles
        // keep classes apart.
        let set = |name: &str, cycle: u64| {
            Fault::Set(SetFault {
                net: net(name),
                cycle,
                offset: 0.25,
                width: 0.5,
            })
        };
        assert_eq!(index.key(&set("c1", 3)), index.key(&set("c2", 3)));
        assert_ne!(index.key(&set("c1", 3)), index.key(&set("c2", 4)));
    }

    #[test]
    fn buffer_chain_sets_collapse_and_match_scalar_records() {
        let flat = buffer_chain_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        // Only the two buffers: 2 cells x 2 SETs over a 2-cycle window all
        // share the canonical site c2, so at most two classes (one per
        // cycle) survive out of 4 jobs — at least 2 faults must collapse.
        let cells: Vec<CellId> = flat
            .iter_cells()
            .filter(|(_, c)| c.name.starts_with("u_buf_"))
            .map(|(id, _)| id)
            .collect();
        assert_eq!(cells.len(), 2);
        let base = CampaignConfig {
            workload: Workload {
                reset_cycles: 2,
                run_cycles: 2,
            },
            injections_per_cell: 2,
            engine: EngineKind::Levelized,
            threads: 1,
            ..CampaignConfig::default()
        };
        let scalar = run_campaign(&dut, &cells, &base).unwrap();
        let collapsed = run_campaign(
            &dut,
            &cells,
            &CampaignConfig {
                batching: true,
                collapse_faults: true,
                ..base
            },
        )
        .unwrap();
        assert_eq!(scalar.records, collapsed.records);
        assert!(collapsed.telemetry.collapsed_faults >= 2);
    }

    #[test]
    fn unsupported_batch_lanes_rejected() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let cells: Vec<CellId> = flat.iter_cells().map(|(id, _)| id).collect();
        let config = CampaignConfig {
            engine: EngineKind::Levelized,
            batching: true,
            batch_lanes: 128,
            ..CampaignConfig::default()
        };
        assert!(matches!(
            run_campaign(&dut, &cells, &config),
            Err(SsresfError::Config(_))
        ));
    }

    #[test]
    fn collapse_and_refill_require_batching() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let cells: Vec<CellId> = flat.iter_cells().map(|(id, _)| id).collect();
        for (collapse_faults, lane_refill) in [(true, false), (false, true)] {
            let config = CampaignConfig {
                collapse_faults,
                lane_refill,
                ..CampaignConfig::default()
            };
            assert!(matches!(
                run_campaign(&dut, &cells, &config),
                Err(SsresfError::Config(_))
            ));
        }
    }

    #[test]
    fn batching_rejects_the_event_driven_engine() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let cells: Vec<CellId> = flat.iter_cells().map(|(id, _)| id).collect();
        let config = CampaignConfig {
            engine: EngineKind::EventDriven,
            batching: true,
            ..CampaignConfig::default()
        };
        assert!(matches!(
            run_campaign(&dut, &cells, &config),
            Err(SsresfError::Config(_))
        ));
    }

    #[test]
    fn batching_cuts_per_injection_evaluations_at_least_5x() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        // 4 FFs x 2 injections = 8 jobs in one 8-lane batch on one thread.
        let ffs: Vec<CellId> = flat
            .iter_cells()
            .filter(|(_, c)| c.kind.is_sequential())
            .map(|(id, _)| id)
            .collect();
        let base = CampaignConfig {
            workload: Workload {
                reset_cycles: 2,
                run_cycles: 40,
            },
            injections_per_cell: 2,
            engine: EngineKind::Levelized,
            threads: 1,
            checkpoint_interval: 0,
            ..CampaignConfig::default()
        };
        let scalar = run_campaign(&dut, &ffs, &base).unwrap();
        let batched = run_campaign(
            &dut,
            &ffs,
            &CampaignConfig {
                batching: true,
                ..base
            },
        )
        .unwrap();
        assert_eq!(scalar.records, batched.records);
        // The golden run is scalar in both modes; isolate injection work.
        let golden_evals = batched.telemetry.engine.cells_evaluated;
        let scalar_inj = scalar.telemetry.engine.cells_evaluated - golden_evals;
        let batched_inj = batched.telemetry.engine.word_evals;
        assert!(batched_inj > 0);
        assert!(
            scalar_inj >= 5 * batched_inj,
            "8-lane batch should cut gate evaluations >=5x: scalar {scalar_inj} vs batched {batched_inj}"
        );
    }

    #[test]
    fn fault_generation_matches_cell_kind() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let config = CampaignConfig::default();
        for (id, cell) in flat.iter_cells() {
            for fault in faults_for_cell(&dut, id, &config) {
                match fault {
                    Fault::Seu(f) => {
                        assert!(cell.kind.is_sequential());
                        assert_eq!(f.cell, id);
                    }
                    Fault::Set(f) => {
                        assert!(cell.kind.is_combinational());
                        assert_eq!(f.net, cell.output);
                        assert!(fault.validate().is_ok());
                    }
                }
            }
        }
    }
}
