//! Fault-injection campaigns over sampled cells.
//!
//! For every cell in the fault-injection list the campaign generates one or
//! more single-particle faults (SEU for state-holding cells, SET with a
//! LET-dependent pulse width for combinational cells), re-simulates the
//! workload, and classifies the run as a soft error when the primary-output
//! trace diverges from the golden run — the paper's VCD-comparison loop.
//! Injections run in parallel across threads; results are deterministic
//! under the configured seed regardless of thread count.
//!
//! The golden run records engine-state checkpoints every
//! [`CampaignConfig::checkpoint_interval`] cycles; each injection then
//! restores the nearest checkpoint at or before its fault cycle instead of
//! re-simulating from reset, and — with [`CampaignConfig::early_stop`] —
//! terminates once its verdict is decided and its state has re-converged
//! with the golden run. Both fast paths are bit-identical to from-scratch
//! simulation by construction.

use crate::error::SsresfError;
use crate::workload::{Dut, EngineKind, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use ssresf_netlist::CellId;
use ssresf_radiation::{PulseWidthModel, RadiationEnvironment};
use ssresf_sim::{CycleTrace, Fault, SetFault, SeuFault};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Campaign configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Workload length.
    pub workload: Workload,
    /// Particle environment (LET drives the SET pulse-width model).
    pub environment: RadiationEnvironment,
    /// Faults injected per sampled cell.
    pub injections_per_cell: usize,
    /// SET pulse-width model.
    pub pulse: PulseWidthModel,
    /// Base seed; per-cell streams derive from it.
    pub seed: u64,
    /// Simulation engine.
    pub engine: EngineKind,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Cycles between golden-run checkpoints that injection runs
    /// fast-forward from (0 disables checkpointing; every run then replays
    /// the workload from reset).
    #[serde(default = "default_checkpoint_interval")]
    pub checkpoint_interval: u64,
    /// Terminate a faulty run early once its verdict is decided and its
    /// engine state has re-converged with the golden run at a checkpoint
    /// boundary; the skipped tail is filled from the golden trace, so
    /// records are bit-identical either way.
    #[serde(default)]
    pub early_stop: bool,
}

fn default_checkpoint_interval() -> u64 {
    10
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            workload: Workload::default(),
            environment: RadiationEnvironment::geo_transfer(),
            injections_per_cell: 1,
            pulse: PulseWidthModel::standard(),
            seed: 3,
            engine: EngineKind::EventDriven,
            threads: 0,
            checkpoint_interval: default_checkpoint_interval(),
            early_stop: false,
        }
    }
}

/// The outcome of one injection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InjectionRecord {
    /// The struck cell.
    pub cell: CellId,
    /// The injected fault (workload-relative cycle).
    pub fault: Fault,
    /// Whether the primary outputs diverged from the golden run.
    pub soft_error: bool,
    /// Number of divergent (cycle, signal) samples.
    pub divergences: usize,
}

/// Aggregate campaign outcome.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Golden (fault-free) output trace.
    pub golden: CycleTrace,
    /// Per-net toggle activity of the golden run.
    pub golden_activity: Vec<f64>,
    /// One record per injection, ordered by cell then injection index.
    pub records: Vec<InjectionRecord>,
    /// Wall-clock time spent simulating (golden + all injections).
    pub simulation_time: Duration,
    /// Engine work proxy accumulated over all runs.
    pub total_work: u64,
}

impl CampaignOutcome {
    /// Number of injections that produced a soft error.
    pub fn soft_errors(&self) -> usize {
        self.records.iter().filter(|r| r.soft_error).count()
    }

    /// Cells that produced at least one soft error.
    pub fn sensitive_cells(&self) -> Vec<CellId> {
        let mut cells: Vec<CellId> = self
            .records
            .iter()
            .filter(|r| r.soft_error)
            .map(|r| r.cell)
            .collect();
        cells.sort();
        cells.dedup();
        cells
    }

    /// Observed soft-error probability of one cell (errors / injections),
    /// or `None` if the cell was never injected.
    pub fn cell_error_probability(&self, cell: CellId) -> Option<f64> {
        let mut total = 0usize;
        let mut errors = 0usize;
        for r in &self.records {
            if r.cell == cell {
                total += 1;
                if r.soft_error {
                    errors += 1;
                }
            }
        }
        if total == 0 {
            None
        } else {
            Some(errors as f64 / total as f64)
        }
    }
}

/// Generates the faults for one cell (deterministic per cell and seed).
pub fn faults_for_cell(dut: &Dut<'_>, cell: CellId, config: &CampaignConfig) -> Vec<Fault> {
    let mut rng = StdRng::seed_from_u64(
        config.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(cell.0) + 1)),
    );
    let info = dut.netlist().cell(cell);
    (0..config.injections_per_cell)
        .map(|_| {
            let cycle = rng.gen_range(0..config.workload.run_cycles.max(1));
            let offset = rng.gen::<f64>() * 0.999;
            if info.kind.is_sequential() {
                Fault::Seu(SeuFault {
                    cell,
                    cycle,
                    offset,
                })
            } else {
                Fault::Set(SetFault {
                    net: info.output,
                    cycle,
                    offset,
                    width: config
                        .pulse
                        .sample_width(config.environment.let_value, &mut rng),
                })
            }
        })
        .collect()
}

/// Runs the full campaign over `cells`.
///
/// # Errors
///
/// Propagates configuration and simulation failures.
pub fn run_campaign(
    dut: &Dut<'_>,
    cells: &[CellId],
    config: &CampaignConfig,
) -> Result<CampaignOutcome, SsresfError> {
    if config.injections_per_cell == 0 {
        return Err(SsresfError::Config("injections_per_cell is 0".into()));
    }
    let started = Instant::now();
    // The golden run doubles as the checkpoint source workers fork from.
    let golden = dut.run_golden_with_checkpoints(
        config.engine,
        &config.workload,
        config.checkpoint_interval,
    )?;

    // Pre-generate every fault so worker threads only simulate.
    let jobs: Vec<(CellId, Fault)> = cells
        .iter()
        .flat_map(|&cell| {
            faults_for_cell(dut, cell, config)
                .into_iter()
                .map(move |f| (cell, f))
        })
        .collect();

    let threads = if config.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        config.threads
    };
    let threads = threads.min(jobs.len().max(1));

    let golden_run = &golden;
    let golden_trace = &golden.outcome.trace;
    let mut results: Vec<Option<(InjectionRecord, u64)>> = vec![None; jobs.len()];
    let error: std::sync::Mutex<Option<SsresfError>> = std::sync::Mutex::new(None);
    // Raised on the first failure so sibling workers stop simulating
    // chunks whose results will be discarded anyway.
    let cancel = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let mut remaining: &mut [Option<(InjectionRecord, u64)>] = &mut results;
        let chunk = jobs.len().div_ceil(threads).max(1);
        for job_chunk in jobs.chunks(chunk) {
            let (mine, rest) = remaining.split_at_mut(job_chunk.len().min(remaining.len()));
            remaining = rest;
            let error = &error;
            let cancel = &cancel;
            scope.spawn(move || {
                for ((cell, fault), slot) in job_chunk.iter().zip(mine.iter_mut()) {
                    if cancel.load(Ordering::Relaxed) {
                        return;
                    }
                    // `resume` falls back to a from-scratch run when
                    // checkpointing is disabled.
                    let run = dut.resume(
                        config.engine,
                        &config.workload,
                        std::slice::from_ref(fault),
                        golden_run,
                        config.early_stop,
                    );
                    match run {
                        Ok(outcome) => {
                            let diffs = golden_trace.diff(&outcome.trace);
                            *slot = Some((
                                InjectionRecord {
                                    cell: *cell,
                                    fault: *fault,
                                    soft_error: !diffs.is_empty(),
                                    divergences: diffs.len(),
                                },
                                outcome.work,
                            ));
                        }
                        Err(e) => {
                            cancel.store(true, Ordering::Relaxed);
                            let mut guard = error.lock().expect("mutex poisoned");
                            if guard.is_none() {
                                *guard = Some(e);
                            }
                            return;
                        }
                    }
                }
            });
        }
    });

    if let Some(e) = error.into_inner().expect("mutex poisoned") {
        return Err(e);
    }
    let mut records = Vec::with_capacity(jobs.len());
    let mut total_work = golden.outcome.work;
    for slot in results {
        let (record, work) = slot.expect("worker completed without error");
        records.push(record);
        total_work += work;
    }

    Ok(CampaignOutcome {
        golden: golden.outcome.trace,
        golden_activity: golden.outcome.activity_per_cycle,
        records,
        simulation_time: started.elapsed(),
        total_work,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssresf_netlist::{CellKind, Design, FlatNetlist, ModuleBuilder, PortDir};

    /// A 4-bit counter: every FF is observable, so SEUs cause soft errors.
    fn counter_netlist() -> FlatNetlist {
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("ctr");
        let clk = mb.port("clk", PortDir::Input);
        let rst_n = mb.port("rst_n", PortDir::Input);
        let mut qs = Vec::new();
        for i in 0..4 {
            qs.push(mb.port(format!("q_{i}"), PortDir::Output));
        }
        let mut carry = qs[0];
        for i in 0..4 {
            let d = mb.net(format!("d_{i}"));
            if i == 0 {
                mb.cell("u_inc_0", CellKind::Inv, &[qs[0]], &[d]).unwrap();
            } else {
                mb.cell(format!("u_inc_{i}"), CellKind::Xor2, &[qs[i], carry], &[d])
                    .unwrap();
                if i + 1 < 4 {
                    let c = mb.net(format!("c_{i}"));
                    mb.cell(format!("u_car_{i}"), CellKind::And2, &[qs[i], carry], &[c])
                        .unwrap();
                    carry = c;
                }
            }
            mb.cell(
                format!("u_ff_{i}"),
                CellKind::Dffr,
                &[clk, d, rst_n],
                &[qs[i]],
            )
            .unwrap();
        }
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        design.flatten().unwrap()
    }

    #[test]
    fn seu_on_observable_ffs_always_errors() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let ffs: Vec<CellId> = flat
            .iter_cells()
            .filter(|(_, c)| c.kind.is_sequential())
            .map(|(id, _)| id)
            .collect();
        let config = CampaignConfig {
            workload: Workload {
                reset_cycles: 2,
                run_cycles: 20,
            },
            injections_per_cell: 2,
            ..CampaignConfig::default()
        };
        let outcome = run_campaign(&dut, &ffs, &config).unwrap();
        assert_eq!(outcome.records.len(), 8);
        // Counter bits are directly observable: every flip is a soft error.
        assert_eq!(outcome.soft_errors(), 8);
        assert_eq!(outcome.sensitive_cells().len(), 4);
        for &ff in &ffs {
            assert_eq!(outcome.cell_error_probability(ff), Some(1.0));
        }
        assert!(outcome.total_work > 0);
    }

    #[test]
    fn results_are_deterministic_across_thread_counts() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let cells: Vec<CellId> = flat.iter_cells().map(|(id, _)| id).collect();
        let base = CampaignConfig {
            workload: Workload {
                reset_cycles: 2,
                run_cycles: 15,
            },
            ..CampaignConfig::default()
        };
        let one = run_campaign(&dut, &cells, &CampaignConfig { threads: 1, ..base }).unwrap();
        let four = run_campaign(&dut, &cells, &CampaignConfig { threads: 4, ..base }).unwrap();
        assert_eq!(one.records, four.records);
    }

    #[test]
    fn engines_agree_on_seu_verdicts() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let ffs: Vec<CellId> = flat
            .iter_cells()
            .filter(|(_, c)| c.kind.is_sequential())
            .map(|(id, _)| id)
            .collect();
        let base = CampaignConfig {
            workload: Workload {
                reset_cycles: 2,
                run_cycles: 20,
            },
            ..CampaignConfig::default()
        };
        let ev = run_campaign(
            &dut,
            &ffs,
            &CampaignConfig {
                engine: EngineKind::EventDriven,
                ..base
            },
        )
        .unwrap();
        let lv = run_campaign(
            &dut,
            &ffs,
            &CampaignConfig {
                engine: EngineKind::Levelized,
                ..base
            },
        )
        .unwrap();
        // SEU semantics are cycle-exact in both engines.
        let verdicts =
            |o: &CampaignOutcome| -> Vec<bool> { o.records.iter().map(|r| r.soft_error).collect() };
        assert_eq!(verdicts(&ev), verdicts(&lv));
    }

    /// A counter whose low bit feeds a 3-stage shift register; upsets in
    /// the shift stages flush out within 3 cycles, so faulty runs
    /// re-converge with the golden run (exercising early stop).
    fn shift_netlist() -> FlatNetlist {
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("shifter");
        let clk = mb.port("clk", PortDir::Input);
        let rst_n = mb.port("rst_n", PortDir::Input);
        let q0 = mb.port("q0", PortDir::Output);
        let tap = mb.port("tap", PortDir::Output);
        let nq = mb.net("nq");
        mb.cell("u_inv", CellKind::Inv, &[q0], &[nq]).unwrap();
        mb.cell("u_ff", CellKind::Dffr, &[clk, nq, rst_n], &[q0])
            .unwrap();
        let s1 = mb.net("s1");
        let s2 = mb.net("s2");
        mb.cell("u_sh_0", CellKind::Dffr, &[clk, q0, rst_n], &[s1])
            .unwrap();
        mb.cell("u_sh_1", CellKind::Dffr, &[clk, s1, rst_n], &[s2])
            .unwrap();
        mb.cell("u_sh_2", CellKind::Dffr, &[clk, s2, rst_n], &[tap])
            .unwrap();
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        design.flatten().unwrap()
    }

    #[test]
    fn checkpointed_records_match_from_scratch_and_reduce_work() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let cells: Vec<CellId> = flat.iter_cells().map(|(id, _)| id).collect();
        let base = CampaignConfig {
            injections_per_cell: 2,
            ..CampaignConfig::default()
        };
        let scratch = run_campaign(
            &dut,
            &cells,
            &CampaignConfig {
                checkpoint_interval: 0,
                ..base
            },
        )
        .unwrap();
        let checkpointed = run_campaign(
            &dut,
            &cells,
            &CampaignConfig {
                checkpoint_interval: 10,
                ..base
            },
        )
        .unwrap();
        assert_eq!(scratch.records, checkpointed.records);
        assert_eq!(scratch.golden, checkpointed.golden);
        // Fault cycles are uniform over the workload, so fast-forwarding
        // skips roughly half of every injection's cycles.
        assert!(
            checkpointed.total_work * 3 < scratch.total_work * 2,
            "checkpointing saved too little: {} vs {}",
            checkpointed.total_work,
            scratch.total_work
        );
    }

    #[test]
    fn early_stop_records_match_and_reduce_work_further() {
        let flat = shift_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let cells: Vec<CellId> = flat.iter_cells().map(|(id, _)| id).collect();
        let base = CampaignConfig {
            workload: Workload {
                reset_cycles: 2,
                run_cycles: 60,
            },
            injections_per_cell: 3,
            checkpoint_interval: 5,
            ..CampaignConfig::default()
        };
        let plain = run_campaign(&dut, &cells, &base).unwrap();
        let stopped = run_campaign(
            &dut,
            &cells,
            &CampaignConfig {
                early_stop: true,
                ..base
            },
        )
        .unwrap();
        assert_eq!(plain.records, stopped.records);
        // Shift-register upsets flush within 3 cycles, so early stop
        // truncates their tails at the next checkpoint boundary.
        assert!(
            stopped.total_work < plain.total_work,
            "early stop saved nothing: {} vs {}",
            stopped.total_work,
            plain.total_work
        );
    }

    #[test]
    fn zero_injections_rejected() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let config = CampaignConfig {
            injections_per_cell: 0,
            ..CampaignConfig::default()
        };
        assert!(run_campaign(&dut, &[], &config).is_err());
    }

    #[test]
    fn fault_generation_matches_cell_kind() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let config = CampaignConfig::default();
        for (id, cell) in flat.iter_cells() {
            for fault in faults_for_cell(&dut, id, &config) {
                match fault {
                    Fault::Seu(f) => {
                        assert!(cell.kind.is_sequential());
                        assert_eq!(f.cell, id);
                    }
                    Fault::Set(f) => {
                        assert!(cell.kind.is_combinational());
                        assert_eq!(f.net, cell.output);
                        assert!(fault.validate().is_ok());
                    }
                }
            }
        }
    }
}
