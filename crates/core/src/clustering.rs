//! Algorithm 1: clustering analysis for the internal cells of a netlist.
//!
//! Cells are grouped by the hierarchical-path distance of paper Eq. 1:
//!
//! ```text
//! D(A, B) = Σ_{Li=1}^{LN} Compare(Module(A, Li), Module(B, Li)) · 2^(LN−Li)
//! ```
//!
//! i.e. a mismatch near the top of the hierarchy weighs exponentially more
//! than one deep inside. The k-medoids iteration of Algorithm 1 (random
//! centers → assign → recenter on the member with the minimum distance sum
//! → repeat until stable) is executed over *distinct depth-`LN` layer
//! signatures* weighted by their cell multiplicity — cells whose paths
//! agree on the first `LN` layers are indistinguishable under Eq. 1, which
//! shrinks the quadratic medoid update without changing the result.
//! Signatures are interned integers ([`ssresf_netlist::LayerSignatures`]),
//! so each distance is a handful of integer compares evaluated on demand
//! (no dense matrix), and the assign and update steps fan out across worker
//! threads with order-fixed reductions, keeping the output bit-identical
//! for every thread count. [`cluster_cells_reference`] preserves the
//! pre-optimization implementation as a differential baseline.

use crate::error::SsresfError;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use ssresf_mlcore::{parallel_map, resolve_threads};
use ssresf_netlist::{CellId, FlatNetlist, HierPath, PathId};
use std::collections::HashMap;

/// Configuration of the clustering pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusteringConfig {
    /// `KN` — number of clusters.
    pub clusters: usize,
    /// `LN` — layer depth considered by the distance function.
    pub layer_depth: usize,
    /// Seed for the random initial centers.
    pub seed: u64,
    /// Iteration bound (Algorithm 1 converges long before this).
    pub max_iters: usize,
    /// Worker threads for the assign and medoid-update steps (0 = all
    /// cores). The result is bit-identical for every thread count.
    #[serde(default)]
    pub threads: usize,
}

impl Default for ClusteringConfig {
    fn default() -> Self {
        ClusteringConfig {
            clusters: 5,
            layer_depth: 3,
            seed: 1,
            max_iters: 64,
            threads: 0,
        }
    }
}

/// The result of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Clustering {
    /// Cluster index of every cell (indexed by `CellId`).
    pub assignment: Vec<u32>,
    /// Number of clusters actually produced (≤ configured `KN` when there
    /// are fewer distinct paths than requested clusters).
    pub clusters: usize,
    /// Member cells per cluster.
    pub members: Vec<Vec<CellId>>,
}

impl Clustering {
    /// Cluster of one cell.
    pub fn cluster_of(&self, cell: CellId) -> usize {
        self.assignment[cell.index()] as usize
    }

    /// Cells per cluster.
    pub fn sizes(&self) -> Vec<usize> {
        self.members.iter().map(Vec::len).collect()
    }
}

/// Paper Eq. 1: weighted layer-by-layer path comparison.
///
/// `Module(A, Li)` is the instance-path segment of `A` at (1-based) layer
/// `Li`; two absent segments compare equal (both cells live above that
/// depth), an absent vs. present segment compares unequal.
pub fn hier_distance(a: &HierPath, b: &HierPath, layer_depth: usize) -> u64 {
    let mut distance = 0u64;
    for li in 1..=layer_depth {
        let differs = a.layer(li) != b.layer(li);
        if differs {
            distance += 1u64 << (layer_depth - li);
        }
    }
    distance
}

/// Paper Eq. 1 over two [layer signatures](ssresf_netlist::LayerSignatures)
/// of equal width: a few integer compares instead of string comparisons.
fn sig_distance(a: &[u32], b: &[u32]) -> u64 {
    let ln = a.len();
    let mut distance = 0u64;
    for l in 0..ln {
        if a[l] != b[l] {
            distance += 1u64 << (ln - 1 - l);
        }
    }
    distance
}

fn validate_config(config: &ClusteringConfig) -> Result<(), SsresfError> {
    if config.clusters == 0 {
        return Err(SsresfError::Config("clusters must be nonzero".into()));
    }
    if config.layer_depth == 0 || config.layer_depth > 63 {
        return Err(SsresfError::Config(format!(
            "layer depth {} out of range 1..=63",
            config.layer_depth
        )));
    }
    Ok(())
}

/// Weighted medoid of one cluster: the member minimizing
/// `Σ_m D(candidate, m) · weight(m)`.
///
/// A single-member cluster is its own medoid (its distance sum is zero by
/// definition), so the quadratic scan is skipped. Ties break to the lowest
/// group index: candidates are scanned in ascending index order with a
/// strict `<`, so the first minimal sum wins. Both invariants are what keep
/// the medoid update independent of thread count and bit-identical to the
/// serial reference implementation.
fn weighted_medoid(members: &[usize], group_sigs: &[&[u32]], weights: &[u64]) -> Option<usize> {
    match members {
        [] => None,
        [only] => Some(*only),
        _ => {
            let mut best = members[0];
            let mut best_sum = u64::MAX;
            for &candidate in members {
                let sum: u64 = members
                    .iter()
                    .map(|&m| sig_distance(group_sigs[candidate], group_sigs[m]) * weights[m])
                    .sum();
                if sum < best_sum {
                    best_sum = sum;
                    best = candidate;
                }
            }
            Some(best)
        }
    }
}

/// Maps a per-group assignment back onto cells, renumbering clusters
/// densely in case some ended up empty. `group_cells[g]` lists the cells of
/// group `g`; `assignment[g]` its cluster.
fn assemble_clustering(
    cell_count: usize,
    group_cells: &[Vec<CellId>],
    assignment: &[usize],
) -> Clustering {
    let mut used: Vec<usize> = assignment.to_vec();
    used.sort_unstable();
    used.dedup();
    let remap: HashMap<usize, u32> = used
        .iter()
        .enumerate()
        .map(|(new, &old)| (old, new as u32))
        .collect();

    let mut cell_assignment = vec![0u32; cell_count];
    let mut members = vec![Vec::new(); used.len()];
    for (gi, cells) in group_cells.iter().enumerate() {
        let cluster = remap[&assignment[gi]];
        for &cell in cells {
            cell_assignment[cell.index()] = cluster;
            members[cluster as usize].push(cell);
        }
    }
    for m in &mut members {
        m.sort();
    }

    Clustering {
        assignment: cell_assignment,
        clusters: members.len(),
        members,
    }
}

/// Runs Algorithm 1 over the netlist.
///
/// Cells are first grouped by distinct path, then paths agreeing on the
/// first `LN` layers are collapsed into one weighted group — Eq. 1 cannot
/// distinguish them, so this shrinks the k-medoids problem without changing
/// the result. Distances are computed on demand from interned layer
/// signatures (no O(n²) matrix), and the assign and medoid-update steps fan
/// out across `config.threads` workers; every reduction is order-fixed, so
/// the clustering is bit-identical for any thread count.
///
/// # Errors
///
/// Returns [`SsresfError::Config`] for zero clusters or zero layer depth,
/// and [`SsresfError::EmptyNetlist`] when there are no cells.
pub fn cluster_cells(
    netlist: &FlatNetlist,
    config: &ClusteringConfig,
) -> Result<Clustering, SsresfError> {
    validate_config(config)?;
    if netlist.cells().is_empty() {
        return Err(SsresfError::EmptyNetlist);
    }

    // Group cells by distinct path.
    let mut by_path: HashMap<PathId, Vec<CellId>> = HashMap::new();
    for (id, cell) in netlist.iter_cells() {
        by_path.entry(cell.path).or_default().push(id);
    }
    let mut path_ids: Vec<PathId> = by_path.keys().copied().collect();
    path_ids.sort();

    // Collapse paths sharing a depth-LN signature: scanning path ids in
    // ascending order keeps group order identical to the per-path reference
    // whenever signatures are all distinct.
    let sigs = netlist.paths().layer_signatures(config.layer_depth);
    let mut sig_index: HashMap<&[u32], usize> = HashMap::new();
    let mut group_sigs: Vec<&[u32]> = Vec::new();
    let mut group_cells: Vec<Vec<CellId>> = Vec::new();
    for &path_id in &path_ids {
        let sig = sigs.of(path_id);
        let gi = *sig_index.entry(sig).or_insert_with(|| {
            group_sigs.push(sig);
            group_cells.push(Vec::new());
            group_sigs.len() - 1
        });
        group_cells[gi].extend(by_path.remove(&path_id).expect("grouped above"));
    }
    let weights: Vec<u64> = group_cells.iter().map(|c| c.len() as u64).collect();
    let n = group_sigs.len();
    let kn = config.clusters.min(n);
    let threads = resolve_threads(config.threads, n);

    // Random initial centers (line 2 of Algorithm 1).
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut centers: Vec<usize> = (0..n).collect();
    centers.shuffle(&mut rng);
    centers.truncate(kn);
    centers.sort_unstable();

    let mut assignment = vec![0usize; n];
    let cluster_ids: Vec<usize> = (0..kn).collect();
    for _ in 0..config.max_iters {
        // assign_cells: nearest center, ties to the lowest cluster index.
        // Groups are independent and results land in input order.
        assignment = parallel_map(&group_sigs, threads, |_, &sig| {
            let mut best = 0;
            let mut best_d = u64::MAX;
            for (c, &center) in centers.iter().enumerate() {
                let d = sig_distance(sig, group_sigs[center]);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            best
        });

        // update_centers: weighted medoid per cluster, one job per cluster.
        let mut members = vec![Vec::new(); kn];
        for (i, &c) in assignment.iter().enumerate() {
            members[c].push(i);
        }
        let new_centers = parallel_map(&cluster_ids, threads, |_, &c| {
            weighted_medoid(&members[c], &group_sigs, &weights).unwrap_or(centers[c])
        });

        if new_centers == centers {
            break;
        }
        centers = new_centers;
    }

    Ok(assemble_clustering(
        netlist.cells().len(),
        &group_cells,
        &assignment,
    ))
}

/// The pre-optimization Algorithm 1: per-path groups, a dense O(paths²)
/// distance matrix, and serial assign/update loops.
///
/// Kept verbatim as the differential baseline for the fast
/// [`cluster_cells`] — property tests pin the two bit-identical whenever
/// `layer_depth` covers the whole hierarchy, and the `mlpath` bench
/// measures the speedup against it.
pub fn cluster_cells_reference(
    netlist: &FlatNetlist,
    config: &ClusteringConfig,
) -> Result<Clustering, SsresfError> {
    validate_config(config)?;
    if netlist.cells().is_empty() {
        return Err(SsresfError::EmptyNetlist);
    }

    // Group cells by distinct path.
    let mut groups: HashMap<PathId, Vec<CellId>> = HashMap::new();
    for (id, cell) in netlist.iter_cells() {
        groups.entry(cell.path).or_default().push(id);
    }
    let mut path_ids: Vec<PathId> = groups.keys().copied().collect();
    path_ids.sort();
    let paths: Vec<&HierPath> = path_ids
        .iter()
        .map(|&p| netlist.paths().resolve(p))
        .collect();
    let weights: Vec<u64> = path_ids.iter().map(|p| groups[p].len() as u64).collect();
    let n = paths.len();
    let kn = config.clusters.min(n);

    // Pairwise distances between distinct paths.
    let ln = config.layer_depth;
    let mut dist = vec![0u64; n * n];
    for i in 0..n {
        for j in i + 1..n {
            let d = hier_distance(paths[i], paths[j], ln);
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }

    // Random initial centers (line 2 of Algorithm 1).
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut centers: Vec<usize> = (0..n).collect();
    centers.shuffle(&mut rng);
    centers.truncate(kn);
    centers.sort_unstable();

    let mut assignment = vec![0usize; n];
    for _ in 0..config.max_iters {
        // assign_cells: nearest center, ties to the lowest cluster index.
        for (i, slot) in assignment.iter_mut().enumerate() {
            let mut best = 0;
            let mut best_d = u64::MAX;
            for (c, &center) in centers.iter().enumerate() {
                let d = dist[i * n + center];
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            *slot = best;
        }

        // update_centers: weighted medoid per cluster.
        let mut new_centers = centers.clone();
        for (c, new_center) in new_centers.iter_mut().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&i| assignment[i] == c).collect();
            if members.is_empty() {
                continue;
            }
            let mut best = members[0];
            let mut best_sum = u64::MAX;
            for &candidate in &members {
                let sum: u64 = members
                    .iter()
                    .map(|&m| dist[candidate * n + m] * weights[m])
                    .sum();
                if sum < best_sum {
                    best_sum = sum;
                    best = candidate;
                }
            }
            *new_center = best;
        }

        if new_centers == centers {
            break;
        }
        centers = new_centers;
    }

    let group_cells: Vec<Vec<CellId>> = path_ids.iter().map(|p| groups[p].clone()).collect();
    Ok(assemble_clustering(
        netlist.cells().len(),
        &group_cells,
        &assignment,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssresf_netlist::{CellKind, Design, ModuleBuilder, PortDir};

    fn path(segments: &[&str]) -> HierPath {
        HierPath::from_segments(segments.iter().copied())
    }

    #[test]
    fn distance_weights_upper_layers_exponentially() {
        let ln = 3;
        let a = path(&["cpu", "alu", "add"]);
        // Mismatch only at layer 3.
        assert_eq!(hier_distance(&a, &path(&["cpu", "alu", "sub"]), ln), 1);
        // Mismatch at layers 2 and 3.
        assert_eq!(hier_distance(&a, &path(&["cpu", "lsu", "sub"]), ln), 3);
        // Mismatch everywhere.
        assert_eq!(hier_distance(&a, &path(&["bus", "lane", "ff"]), ln), 7);
        // Identity.
        assert_eq!(hier_distance(&a, &a, ln), 0);
    }

    #[test]
    fn distance_handles_shallow_paths() {
        let ln = 3;
        let shallow = path(&["cpu"]);
        let deep = path(&["cpu", "alu", "add"]);
        // Layers 2 and 3: None vs Some -> mismatch.
        assert_eq!(hier_distance(&shallow, &deep, ln), 3);
        // Two root cells agree at every layer (both absent).
        assert_eq!(hier_distance(&HierPath::root(), &HierPath::root(), ln), 0);
    }

    #[test]
    fn distance_is_symmetric_and_triangleish() {
        let ln = 4;
        let ps = [
            path(&["a"]),
            path(&["a", "b"]),
            path(&["a", "b", "c"]),
            path(&["x", "y"]),
        ];
        for i in &ps {
            for j in &ps {
                assert_eq!(hier_distance(i, j, ln), hier_distance(j, i, ln));
                for k in &ps {
                    // The per-layer Hamming structure satisfies the triangle
                    // inequality.
                    assert!(
                        hier_distance(i, k, ln)
                            <= hier_distance(i, j, ln) + hier_distance(j, k, ln)
                    );
                }
            }
        }
    }

    /// Builds a netlist with three obviously distinct hierarchy branches.
    fn three_branch_netlist() -> FlatNetlist {
        let mut design = Design::new();
        let mut leaf = ModuleBuilder::new("leaf");
        let a = leaf.port("a", PortDir::Input);
        let y = leaf.port("y", PortDir::Output);
        let w1 = leaf.net("w1");
        let w2 = leaf.net("w2");
        leaf.cell("u0", CellKind::Inv, &[a], &[w1]).unwrap();
        leaf.cell("u1", CellKind::Buf, &[w1], &[w2]).unwrap();
        leaf.cell("u2", CellKind::Inv, &[w2], &[y]).unwrap();
        let leaf_id = design.add_module(leaf.finish()).unwrap();

        let mut top = ModuleBuilder::new("top");
        let x = top.port("x", PortDir::Input);
        let z = top.port("z", PortDir::Output);
        let m1 = top.net("m1");
        let m2 = top.net("m2");
        top.instance("u_cpu", leaf_id, &[x, m1]).unwrap();
        top.instance("u_bus", leaf_id, &[m1, m2]).unwrap();
        top.instance("u_mem", leaf_id, &[m2, z]).unwrap();
        let top_id = design.add_module(top.finish()).unwrap();
        design.set_top(top_id).unwrap();
        design.flatten().unwrap()
    }

    #[test]
    fn clusters_follow_hierarchy_branches() {
        let flat = three_branch_netlist();
        let clustering = cluster_cells(
            &flat,
            &ClusteringConfig {
                clusters: 3,
                layer_depth: 2,
                seed: 7,
                max_iters: 32,
                threads: 1,
            },
        )
        .unwrap();
        assert_eq!(clustering.clusters, 3);
        // Cells sharing an instance must share a cluster.
        for prefix in ["u_cpu", "u_bus", "u_mem"] {
            let ids: Vec<CellId> = flat
                .iter_cells()
                .filter(|(id, _)| flat.cell_full_name(*id).starts_with(prefix))
                .map(|(id, _)| id)
                .collect();
            assert_eq!(ids.len(), 3);
            let first = clustering.cluster_of(ids[0]);
            assert!(ids.iter().all(|&c| clustering.cluster_of(c) == first));
        }
        // And the three branches land in three different clusters.
        let cluster_of = |name: &str| clustering.cluster_of(flat.cell_by_name(name).unwrap());
        let set: std::collections::HashSet<usize> = ["u_cpu.u0", "u_bus.u0", "u_mem.u0"]
            .iter()
            .map(|n| cluster_of(n))
            .collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn cluster_count_is_capped_by_distinct_paths() {
        let flat = three_branch_netlist();
        let clustering = cluster_cells(
            &flat,
            &ClusteringConfig {
                clusters: 10,
                ..ClusteringConfig::default()
            },
        )
        .unwrap();
        assert!(clustering.clusters <= 3);
        // Every cell is assigned.
        let total: usize = clustering.sizes().iter().sum();
        assert_eq!(total, flat.cells().len());
    }

    #[test]
    fn clustering_is_deterministic_under_seed() {
        let flat = three_branch_netlist();
        let cfg = ClusteringConfig::default();
        let a = cluster_cells(&flat, &cfg).unwrap();
        let b = cluster_cells(&flat, &cfg).unwrap();
        assert_eq!(a, b);
    }

    /// A two-level netlist: `top` instantiates `mid` twice, `mid`
    /// instantiates `leaf` twice, so there are four distinct depth-2 paths
    /// but only two distinct layer-1 signatures.
    fn nested_netlist() -> FlatNetlist {
        let mut design = Design::new();
        let mut leaf = ModuleBuilder::new("leaf");
        let a = leaf.port("a", PortDir::Input);
        let y = leaf.port("y", PortDir::Output);
        let w = leaf.net("w");
        leaf.cell("u0", CellKind::Inv, &[a], &[w]).unwrap();
        leaf.cell("u1", CellKind::Buf, &[w], &[y]).unwrap();
        let leaf_id = design.add_module(leaf.finish()).unwrap();

        let mut mid = ModuleBuilder::new("mid");
        let a = mid.port("a", PortDir::Input);
        let y = mid.port("y", PortDir::Output);
        let w = mid.net("w");
        mid.instance("u_p", leaf_id, &[a, w]).unwrap();
        mid.instance("u_q", leaf_id, &[w, y]).unwrap();
        let mid_id = design.add_module(mid.finish()).unwrap();

        let mut top = ModuleBuilder::new("top");
        let x = top.port("x", PortDir::Input);
        let z = top.port("z", PortDir::Output);
        let m = top.net("m");
        top.instance("u_l", mid_id, &[x, m]).unwrap();
        top.instance("u_r", mid_id, &[m, z]).unwrap();
        let top_id = design.add_module(top.finish()).unwrap();
        design.set_top(top_id).unwrap();
        design.flatten().unwrap()
    }

    #[test]
    fn shallow_depth_collapses_paths_by_signature() {
        let flat = nested_netlist();
        // Four distinct paths, but at layer depth 1 only two signatures
        // (u_l, u_r) — the requested four clusters collapse to two.
        let clustering = cluster_cells(
            &flat,
            &ClusteringConfig {
                clusters: 4,
                layer_depth: 1,
                threads: 1,
                ..ClusteringConfig::default()
            },
        )
        .unwrap();
        assert_eq!(clustering.clusters, 2);
        let cluster_of = |name: &str| clustering.cluster_of(flat.cell_by_name(name).unwrap());
        assert_eq!(cluster_of("u_l.u_p.u0"), cluster_of("u_l.u_q.u1"));
        assert_ne!(cluster_of("u_l.u_p.u0"), cluster_of("u_r.u_p.u0"));
    }

    #[test]
    fn matches_reference_when_depth_covers_hierarchy() {
        // With layer_depth ≥ the deepest path, signatures are distinct per
        // distinct path, so the fast path must reproduce the reference
        // bit for bit: same groups, same seeded centers, same medoids.
        for flat in [three_branch_netlist(), nested_netlist()] {
            for (clusters, seed) in [(2usize, 1u64), (3, 7), (5, 42)] {
                let cfg = ClusteringConfig {
                    clusters,
                    seed,
                    ..ClusteringConfig::default()
                };
                let fast = cluster_cells(&flat, &cfg).unwrap();
                let reference = cluster_cells_reference(&flat, &cfg).unwrap();
                assert_eq!(fast, reference, "clusters {clusters}, seed {seed}");
            }
        }
    }

    #[test]
    fn clustering_is_thread_count_invariant() {
        let flat = nested_netlist();
        let serial = cluster_cells(
            &flat,
            &ClusteringConfig {
                threads: 1,
                ..ClusteringConfig::default()
            },
        )
        .unwrap();
        for threads in [2usize, 8] {
            let threaded = cluster_cells(
                &flat,
                &ClusteringConfig {
                    threads,
                    ..ClusteringConfig::default()
                },
            )
            .unwrap();
            assert_eq!(serial, threaded, "threads = {threads}");
        }
    }

    #[test]
    fn single_member_cluster_is_its_own_medoid() {
        let sig_a: &[u32] = &[0, 1];
        let sig_b: &[u32] = &[2, 3];
        let group_sigs = vec![sig_a, sig_b];
        let weights = vec![5, 1];
        assert_eq!(weighted_medoid(&[1], &group_sigs, &weights), Some(1));
        assert_eq!(weighted_medoid(&[], &group_sigs, &weights), None);
    }

    #[test]
    fn medoid_ties_break_to_lowest_group_index() {
        // Two equidistant members with equal weights: both have the same
        // distance sum, so the lower group index must win.
        let sig_a: &[u32] = &[0, 1];
        let sig_b: &[u32] = &[0, 2];
        let group_sigs = vec![sig_a, sig_b];
        let weights = vec![3, 3];
        assert_eq!(weighted_medoid(&[0, 1], &group_sigs, &weights), Some(0));
    }

    #[test]
    fn config_validation() {
        let flat = three_branch_netlist();
        assert!(cluster_cells(
            &flat,
            &ClusteringConfig {
                clusters: 0,
                ..ClusteringConfig::default()
            }
        )
        .is_err());
        assert!(cluster_cells(
            &flat,
            &ClusteringConfig {
                layer_depth: 0,
                ..ClusteringConfig::default()
            }
        )
        .is_err());
    }
}
