//! Algorithm 1: clustering analysis for the internal cells of a netlist.
//!
//! Cells are grouped by the hierarchical-path distance of paper Eq. 1:
//!
//! ```text
//! D(A, B) = Σ_{Li=1}^{LN} Compare(Module(A, Li), Module(B, Li)) · 2^(LN−Li)
//! ```
//!
//! i.e. a mismatch near the top of the hierarchy weighs exponentially more
//! than one deep inside. The k-medoids iteration of Algorithm 1 (random
//! centers → assign → recenter on the member with the minimum distance sum
//! → repeat until stable) is executed over *distinct paths* weighted by
//! their cell multiplicity — cells sharing a path are indistinguishable
//! under Eq. 1, which turns an O(cells²) medoid update into an
//! O(paths²) one without changing the result.

use crate::error::SsresfError;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use ssresf_netlist::{CellId, FlatNetlist, HierPath, PathId};
use std::collections::HashMap;

/// Configuration of the clustering pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusteringConfig {
    /// `KN` — number of clusters.
    pub clusters: usize,
    /// `LN` — layer depth considered by the distance function.
    pub layer_depth: usize,
    /// Seed for the random initial centers.
    pub seed: u64,
    /// Iteration bound (Algorithm 1 converges long before this).
    pub max_iters: usize,
}

impl Default for ClusteringConfig {
    fn default() -> Self {
        ClusteringConfig {
            clusters: 5,
            layer_depth: 3,
            seed: 1,
            max_iters: 64,
        }
    }
}

/// The result of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Clustering {
    /// Cluster index of every cell (indexed by `CellId`).
    pub assignment: Vec<u32>,
    /// Number of clusters actually produced (≤ configured `KN` when there
    /// are fewer distinct paths than requested clusters).
    pub clusters: usize,
    /// Member cells per cluster.
    pub members: Vec<Vec<CellId>>,
}

impl Clustering {
    /// Cluster of one cell.
    pub fn cluster_of(&self, cell: CellId) -> usize {
        self.assignment[cell.index()] as usize
    }

    /// Cells per cluster.
    pub fn sizes(&self) -> Vec<usize> {
        self.members.iter().map(Vec::len).collect()
    }
}

/// Paper Eq. 1: weighted layer-by-layer path comparison.
///
/// `Module(A, Li)` is the instance-path segment of `A` at (1-based) layer
/// `Li`; two absent segments compare equal (both cells live above that
/// depth), an absent vs. present segment compares unequal.
pub fn hier_distance(a: &HierPath, b: &HierPath, layer_depth: usize) -> u64 {
    let mut distance = 0u64;
    for li in 1..=layer_depth {
        let differs = a.layer(li) != b.layer(li);
        if differs {
            distance += 1u64 << (layer_depth - li);
        }
    }
    distance
}

/// Runs Algorithm 1 over the netlist.
///
/// # Errors
///
/// Returns [`SsresfError::Config`] for zero clusters or zero layer depth,
/// and [`SsresfError::EmptyNetlist`] when there are no cells.
pub fn cluster_cells(
    netlist: &FlatNetlist,
    config: &ClusteringConfig,
) -> Result<Clustering, SsresfError> {
    if config.clusters == 0 {
        return Err(SsresfError::Config("clusters must be nonzero".into()));
    }
    if config.layer_depth == 0 || config.layer_depth > 63 {
        return Err(SsresfError::Config(format!(
            "layer depth {} out of range 1..=63",
            config.layer_depth
        )));
    }
    if netlist.cells().is_empty() {
        return Err(SsresfError::EmptyNetlist);
    }

    // Group cells by distinct path.
    let mut groups: HashMap<PathId, Vec<CellId>> = HashMap::new();
    for (id, cell) in netlist.iter_cells() {
        groups.entry(cell.path).or_default().push(id);
    }
    let mut path_ids: Vec<PathId> = groups.keys().copied().collect();
    path_ids.sort();
    let paths: Vec<&HierPath> = path_ids
        .iter()
        .map(|&p| netlist.paths().resolve(p))
        .collect();
    let weights: Vec<u64> = path_ids.iter().map(|p| groups[p].len() as u64).collect();
    let n = paths.len();
    let kn = config.clusters.min(n);

    // Pairwise distances between distinct paths.
    let ln = config.layer_depth;
    let mut dist = vec![0u64; n * n];
    for i in 0..n {
        for j in i + 1..n {
            let d = hier_distance(paths[i], paths[j], ln);
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }

    // Random initial centers (line 2 of Algorithm 1).
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut centers: Vec<usize> = (0..n).collect();
    centers.shuffle(&mut rng);
    centers.truncate(kn);
    centers.sort_unstable();

    let mut assignment = vec![0usize; n];
    for _ in 0..config.max_iters {
        // assign_cells: nearest center, ties to the lowest cluster index.
        for (i, slot) in assignment.iter_mut().enumerate() {
            let mut best = 0;
            let mut best_d = u64::MAX;
            for (c, &center) in centers.iter().enumerate() {
                let d = dist[i * n + center];
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            *slot = best;
        }

        // update_centers: weighted medoid per cluster.
        let mut new_centers = centers.clone();
        for (c, new_center) in new_centers.iter_mut().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&i| assignment[i] == c).collect();
            if members.is_empty() {
                continue;
            }
            let mut best = members[0];
            let mut best_sum = u64::MAX;
            for &candidate in &members {
                let sum: u64 = members
                    .iter()
                    .map(|&m| dist[candidate * n + m] * weights[m])
                    .sum();
                if sum < best_sum {
                    best_sum = sum;
                    best = candidate;
                }
            }
            *new_center = best;
        }

        if new_centers == centers {
            break;
        }
        centers = new_centers;
    }

    // Final assignment after convergence, mapped back to cells. Renumber
    // clusters densely in case some ended up empty.
    let mut used: Vec<usize> = assignment.clone();
    used.sort_unstable();
    used.dedup();
    let remap: HashMap<usize, u32> = used
        .iter()
        .enumerate()
        .map(|(new, &old)| (old, new as u32))
        .collect();

    let mut cell_assignment = vec![0u32; netlist.cells().len()];
    let mut members = vec![Vec::new(); used.len()];
    for (gi, path_id) in path_ids.iter().enumerate() {
        let cluster = remap[&assignment[gi]];
        for &cell in &groups[path_id] {
            cell_assignment[cell.index()] = cluster;
            members[cluster as usize].push(cell);
        }
    }
    for m in &mut members {
        m.sort();
    }

    Ok(Clustering {
        assignment: cell_assignment,
        clusters: members.len(),
        members,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssresf_netlist::{CellKind, Design, ModuleBuilder, PortDir};

    fn path(segments: &[&str]) -> HierPath {
        HierPath::from_segments(segments.iter().copied())
    }

    #[test]
    fn distance_weights_upper_layers_exponentially() {
        let ln = 3;
        let a = path(&["cpu", "alu", "add"]);
        // Mismatch only at layer 3.
        assert_eq!(hier_distance(&a, &path(&["cpu", "alu", "sub"]), ln), 1);
        // Mismatch at layers 2 and 3.
        assert_eq!(hier_distance(&a, &path(&["cpu", "lsu", "sub"]), ln), 3);
        // Mismatch everywhere.
        assert_eq!(hier_distance(&a, &path(&["bus", "lane", "ff"]), ln), 7);
        // Identity.
        assert_eq!(hier_distance(&a, &a, ln), 0);
    }

    #[test]
    fn distance_handles_shallow_paths() {
        let ln = 3;
        let shallow = path(&["cpu"]);
        let deep = path(&["cpu", "alu", "add"]);
        // Layers 2 and 3: None vs Some -> mismatch.
        assert_eq!(hier_distance(&shallow, &deep, ln), 3);
        // Two root cells agree at every layer (both absent).
        assert_eq!(hier_distance(&HierPath::root(), &HierPath::root(), ln), 0);
    }

    #[test]
    fn distance_is_symmetric_and_triangleish() {
        let ln = 4;
        let ps = [
            path(&["a"]),
            path(&["a", "b"]),
            path(&["a", "b", "c"]),
            path(&["x", "y"]),
        ];
        for i in &ps {
            for j in &ps {
                assert_eq!(hier_distance(i, j, ln), hier_distance(j, i, ln));
                for k in &ps {
                    // The per-layer Hamming structure satisfies the triangle
                    // inequality.
                    assert!(
                        hier_distance(i, k, ln)
                            <= hier_distance(i, j, ln) + hier_distance(j, k, ln)
                    );
                }
            }
        }
    }

    /// Builds a netlist with three obviously distinct hierarchy branches.
    fn three_branch_netlist() -> FlatNetlist {
        let mut design = Design::new();
        let mut leaf = ModuleBuilder::new("leaf");
        let a = leaf.port("a", PortDir::Input);
        let y = leaf.port("y", PortDir::Output);
        let w1 = leaf.net("w1");
        let w2 = leaf.net("w2");
        leaf.cell("u0", CellKind::Inv, &[a], &[w1]).unwrap();
        leaf.cell("u1", CellKind::Buf, &[w1], &[w2]).unwrap();
        leaf.cell("u2", CellKind::Inv, &[w2], &[y]).unwrap();
        let leaf_id = design.add_module(leaf.finish()).unwrap();

        let mut top = ModuleBuilder::new("top");
        let x = top.port("x", PortDir::Input);
        let z = top.port("z", PortDir::Output);
        let m1 = top.net("m1");
        let m2 = top.net("m2");
        top.instance("u_cpu", leaf_id, &[x, m1]).unwrap();
        top.instance("u_bus", leaf_id, &[m1, m2]).unwrap();
        top.instance("u_mem", leaf_id, &[m2, z]).unwrap();
        let top_id = design.add_module(top.finish()).unwrap();
        design.set_top(top_id).unwrap();
        design.flatten().unwrap()
    }

    #[test]
    fn clusters_follow_hierarchy_branches() {
        let flat = three_branch_netlist();
        let clustering = cluster_cells(
            &flat,
            &ClusteringConfig {
                clusters: 3,
                layer_depth: 2,
                seed: 7,
                max_iters: 32,
            },
        )
        .unwrap();
        assert_eq!(clustering.clusters, 3);
        // Cells sharing an instance must share a cluster.
        for prefix in ["u_cpu", "u_bus", "u_mem"] {
            let ids: Vec<CellId> = flat
                .iter_cells()
                .filter(|(id, _)| flat.cell_full_name(*id).starts_with(prefix))
                .map(|(id, _)| id)
                .collect();
            assert_eq!(ids.len(), 3);
            let first = clustering.cluster_of(ids[0]);
            assert!(ids.iter().all(|&c| clustering.cluster_of(c) == first));
        }
        // And the three branches land in three different clusters.
        let cluster_of = |name: &str| clustering.cluster_of(flat.cell_by_name(name).unwrap());
        let set: std::collections::HashSet<usize> = ["u_cpu.u0", "u_bus.u0", "u_mem.u0"]
            .iter()
            .map(|n| cluster_of(n))
            .collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn cluster_count_is_capped_by_distinct_paths() {
        let flat = three_branch_netlist();
        let clustering = cluster_cells(
            &flat,
            &ClusteringConfig {
                clusters: 10,
                ..ClusteringConfig::default()
            },
        )
        .unwrap();
        assert!(clustering.clusters <= 3);
        // Every cell is assigned.
        let total: usize = clustering.sizes().iter().sum();
        assert_eq!(total, flat.cells().len());
    }

    #[test]
    fn clustering_is_deterministic_under_seed() {
        let flat = three_branch_netlist();
        let cfg = ClusteringConfig::default();
        let a = cluster_cells(&flat, &cfg).unwrap();
        let b = cluster_cells(&flat, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn config_validation() {
        let flat = three_branch_netlist();
        assert!(cluster_cells(
            &flat,
            &ClusteringConfig {
                clusters: 0,
                ..ClusteringConfig::default()
            }
        )
        .is_err());
        assert!(cluster_cells(
            &flat,
            &ClusteringConfig {
                layer_depth: 0,
                ..ClusteringConfig::default()
            }
        )
        .is_err());
    }
}
