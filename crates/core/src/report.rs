//! Serializable, human-readable analysis summaries.
//!
//! [`Analysis`] holds every raw artifact (traces, records, the trained
//! model); [`AnalysisSummary`] is the flat, serializable digest a report or
//! dashboard wants — the numbers SSRESF's tables are made of.

use crate::framework::Analysis;
use serde::{Deserialize, Serialize};
use ssresf_json as json;
use std::collections::BTreeMap;
use std::fmt;

/// A flat digest of one [`Analysis`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisSummary {
    /// Cells in the analyzed netlist.
    pub cells: usize,
    /// Clusters produced by Algorithm 1.
    pub clusters: usize,
    /// Cluster sizes.
    pub cluster_sizes: Vec<usize>,
    /// Sampled cells.
    pub sampled: usize,
    /// Total injections.
    pub injections: usize,
    /// Injections that produced a soft error.
    pub soft_errors: usize,
    /// Chip SER (paper Eq. 2).
    pub chip_ser: f64,
    /// SER per module class.
    pub ser_per_class: BTreeMap<String, f64>,
    /// Held-out true-negative rate.
    pub tnr: f64,
    /// Held-out true-positive rate.
    pub tpr: f64,
    /// Held-out precision.
    pub precision: f64,
    /// Held-out accuracy.
    pub accuracy: f64,
    /// Held-out F1 score.
    pub f1: f64,
    /// ROC area under curve.
    pub auc: f64,
    /// `(high, total)` predicted sensitivity counts per module class.
    pub predicted_per_class: BTreeMap<String, (usize, usize)>,
    /// Chip SEU cross-section, cm².
    pub seu_xsect_cm2: f64,
    /// Chip SET cross-section, cm².
    pub set_xsect_cm2: f64,
    /// Simulation wall time, seconds.
    pub simulation_s: f64,
    /// Training wall time, seconds.
    pub training_s: f64,
    /// Prediction wall time, seconds.
    pub prediction_s: f64,
    /// Simulation-over-prediction speed-up.
    pub speedup: f64,
}

impl From<&Analysis> for AnalysisSummary {
    fn from(analysis: &Analysis) -> Self {
        let m = &analysis.sensitivity_report.metrics;
        AnalysisSummary {
            cells: analysis.predictions.len(),
            clusters: analysis.clustering.clusters,
            cluster_sizes: analysis.clustering.sizes(),
            sampled: analysis.sample.len(),
            injections: analysis.campaign.records.len(),
            soft_errors: analysis.campaign.soft_errors(),
            chip_ser: analysis.ser.chip_ser,
            ser_per_class: analysis.ser.per_module_class.clone(),
            tnr: m.tnr(),
            tpr: m.tpr(),
            precision: m.precision(),
            accuracy: m.accuracy(),
            f1: m.f1(),
            auc: analysis.sensitivity_report.roc.auc,
            predicted_per_class: analysis.class_counts.clone(),
            seu_xsect_cm2: analysis.chip_xsect.0,
            set_xsect_cm2: analysis.chip_xsect.1,
            simulation_s: analysis.timing.simulation().as_secs_f64(),
            training_s: analysis.timing.training().as_secs_f64(),
            prediction_s: analysis.timing.prediction().as_secs_f64(),
            speedup: analysis.timing.speedup(),
        }
    }
}

impl AnalysisSummary {
    /// Serializes as pretty JSON.
    pub fn to_json(&self) -> String {
        let ser_per_class = json::Value::Object(
            self.ser_per_class
                .iter()
                .map(|(class, &ser)| (class.clone(), json::Value::from(ser)))
                .collect(),
        );
        let predicted_per_class = json::Value::Object(
            self.predicted_per_class
                .iter()
                .map(|(class, &(high, total))| {
                    (class.clone(), json::Value::from(vec![high, total]))
                })
                .collect(),
        );
        json::object([
            ("cells", json::Value::from(self.cells)),
            ("clusters", json::Value::from(self.clusters)),
            (
                "cluster_sizes",
                json::Value::from(self.cluster_sizes.clone()),
            ),
            ("sampled", json::Value::from(self.sampled)),
            ("injections", json::Value::from(self.injections)),
            ("soft_errors", json::Value::from(self.soft_errors)),
            ("chip_ser", json::Value::from(self.chip_ser)),
            ("ser_per_class", ser_per_class),
            ("tnr", json::Value::from(self.tnr)),
            ("tpr", json::Value::from(self.tpr)),
            ("precision", json::Value::from(self.precision)),
            ("accuracy", json::Value::from(self.accuracy)),
            ("f1", json::Value::from(self.f1)),
            ("auc", json::Value::from(self.auc)),
            ("predicted_per_class", predicted_per_class),
            ("seu_xsect_cm2", json::Value::from(self.seu_xsect_cm2)),
            ("set_xsect_cm2", json::Value::from(self.set_xsect_cm2)),
            ("simulation_s", json::Value::from(self.simulation_s)),
            ("training_s", json::Value::from(self.training_s)),
            ("prediction_s", json::Value::from(self.prediction_s)),
            ("speedup", json::Value::from(self.speedup)),
        ])
        .to_string_pretty()
    }

    /// Parses a summary from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying decode error message.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let num = |name: &str| {
            doc.get(name)
                .and_then(json::Value::as_f64)
                .ok_or_else(|| format!("missing numeric field \"{name}\""))
        };
        let count = |name: &str| {
            doc.get(name)
                .and_then(json::Value::as_usize)
                .ok_or_else(|| format!("missing integer field \"{name}\""))
        };
        let cluster_sizes = doc
            .get("cluster_sizes")
            .and_then(json::Value::as_array)
            .ok_or_else(|| "missing \"cluster_sizes\"".to_owned())?
            .iter()
            .map(|v| v.as_usize().ok_or_else(|| "bad cluster size".to_owned()))
            .collect::<Result<Vec<_>, _>>()?;
        let mut ser_per_class = BTreeMap::new();
        for (class, v) in doc
            .get("ser_per_class")
            .and_then(json::Value::as_object)
            .ok_or_else(|| "missing \"ser_per_class\"".to_owned())?
        {
            let ser = v
                .as_f64()
                .ok_or_else(|| format!("bad SER for class \"{class}\""))?;
            ser_per_class.insert(class.clone(), ser);
        }
        let mut predicted_per_class = BTreeMap::new();
        for (class, v) in doc
            .get("predicted_per_class")
            .and_then(json::Value::as_object)
            .ok_or_else(|| "missing \"predicted_per_class\"".to_owned())?
        {
            let pair = (
                v.at(0).and_then(json::Value::as_usize),
                v.at(1).and_then(json::Value::as_usize),
            );
            let (Some(high), Some(total)) = pair else {
                return Err(format!("bad predicted counts for class \"{class}\""));
            };
            predicted_per_class.insert(class.clone(), (high, total));
        }
        Ok(AnalysisSummary {
            cells: count("cells")?,
            clusters: count("clusters")?,
            cluster_sizes,
            sampled: count("sampled")?,
            injections: count("injections")?,
            soft_errors: count("soft_errors")?,
            chip_ser: num("chip_ser")?,
            ser_per_class,
            tnr: num("tnr")?,
            tpr: num("tpr")?,
            precision: num("precision")?,
            accuracy: num("accuracy")?,
            f1: num("f1")?,
            auc: num("auc")?,
            predicted_per_class,
            seu_xsect_cm2: num("seu_xsect_cm2")?,
            set_xsect_cm2: num("set_xsect_cm2")?,
            simulation_s: num("simulation_s")?,
            training_s: num("training_s")?,
            prediction_s: num("prediction_s")?,
            speedup: num("speedup")?,
        })
    }
}

impl fmt::Display for AnalysisSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "netlist: {} cells in {} clusters {:?}",
            self.cells, self.clusters, self.cluster_sizes
        )?;
        writeln!(
            f,
            "campaign: {} injections over {} sampled cells, {} soft errors",
            self.injections, self.sampled, self.soft_errors
        )?;
        writeln!(f, "chip SER (Eq. 2): {:.2}%", self.chip_ser * 100.0)?;
        for (class, ser) in &self.ser_per_class {
            writeln!(f, "  {class:<8} SER {:.2}%", ser * 100.0)?;
        }
        writeln!(
            f,
            "svm: TNR {:.1}%  TPR {:.1}%  precision {:.1}%  accuracy {:.1}%  F1 {:.2}  AUC {:.3}",
            self.tnr * 100.0,
            self.tpr * 100.0,
            self.precision * 100.0,
            self.accuracy * 100.0,
            self.f1,
            self.auc
        )?;
        for (class, (high, total)) in &self.predicted_per_class {
            writeln!(f, "  {class:<8} {high}/{total} predicted highly sensitive")?;
        }
        writeln!(
            f,
            "xsect: SEU {:.3e} cm², SET {:.3e} cm²",
            self.seu_xsect_cm2, self.set_xsect_cm2
        )?;
        write!(
            f,
            "timing: sim {:.2}s, train {:.2}s, predict {:.4}s (speed-up {:.0}x)",
            self.simulation_s, self.training_s, self.prediction_s, self.speedup
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ssresf, SsresfConfig, Workload};
    use ssresf_socgen::{build_soc, SocConfig};

    fn summary() -> AnalysisSummary {
        let soc = build_soc(&SocConfig::table1()[0]).unwrap();
        let netlist = soc.design.flatten().unwrap();
        let mut config = SsresfConfig::default();
        config.sampling.fraction = 0.08;
        config.campaign.workload = Workload {
            reset_cycles: 3,
            run_cycles: 50,
        };
        let analysis = Ssresf::new(config).analyze(&netlist).unwrap();
        AnalysisSummary::from(&analysis)
    }

    #[test]
    fn summary_digests_the_analysis() {
        let s = summary();
        assert!(s.cells > 500);
        assert!(s.injections >= s.sampled);
        assert!(s.soft_errors <= s.injections);
        assert!(s.chip_ser >= 0.0 && s.chip_ser <= 1.0);
        assert!(s.speedup > 1.0);
        assert!(s.ser_per_class.contains_key("bus"));
    }

    #[test]
    fn summary_round_trips_through_json() {
        let s = summary();
        let restored = AnalysisSummary::from_json(&s.to_json()).unwrap();
        assert_eq!(s.cells, restored.cells);
        assert_eq!(s.predicted_per_class, restored.predicted_per_class);
        // Floats may lose the last ULP through the JSON text form.
        for (class, ser) in &s.ser_per_class {
            let back = restored.ser_per_class[class];
            assert!((ser - back).abs() <= ser.abs() * 1e-12);
        }
    }

    #[test]
    fn display_covers_the_headline_numbers() {
        let s = summary();
        let text = s.to_string();
        for needle in ["chip SER", "svm:", "xsect:", "timing:", "speed-up"] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(AnalysisSummary::from_json("nope").is_err());
    }
}
