//! SVM-based classification of sensitive circuit nodes (paper §III-E).
//!
//! The fault-injection campaign labels the *sampled* cells; this module
//! turns those labels plus the structural features of
//! [`ssresf_netlist::FeatureExtractor`] into a trained classifier that
//! predicts the sensitivity of every remaining node — replacing further
//! simulation and producing the paper's speed-up.

use crate::error::SsresfError;
use serde::{Deserialize, Serialize};
use ssresf_mlcore::{
    cross_val_score_with, forward_selection_with, grid_search_with, parallel_map, roc_curve,
    BinaryMetrics, Dataset, KFold, Kernel, MlError, RocCurve, SelectionCurve, StandardScaler,
    SvmModel, SvmParams, TrainStats,
};
use ssresf_netlist::{CellFeatures, CellId};
use std::time::{Duration, Instant};

/// Configuration of the sensitivity-classification stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensitivityConfig {
    /// Base SVM hyper-parameters (kernel/γ/C may be overridden by the grid
    /// search).
    pub svm: SvmParams,
    /// Cross-validation folds (the paper uses 10; clamped to the data).
    pub folds: usize,
    /// Whether to run the (C, γ) grid search.
    pub grid_search: bool,
    /// Whether to run forward feature selection (paper Fig. 5).
    pub feature_selection: bool,
    /// Cap on features considered by forward selection.
    pub max_features: usize,
    /// Automatically weight the minority class (sets the SVM's
    /// `positive_weight` to the negative/positive ratio, capped at 16).
    pub balance_classes: bool,
    /// Seed for fold shuffling.
    pub seed: u64,
    /// Worker threads for cross-validation, grid search, feature selection
    /// and whole-netlist prediction (0 = all cores). Results are
    /// bit-identical for every thread count.
    #[serde(default)]
    pub threads: usize,
}

impl Default for SensitivityConfig {
    fn default() -> Self {
        SensitivityConfig {
            svm: SvmParams::default(),
            folds: 10,
            grid_search: false,
            feature_selection: false,
            max_features: 6,
            balance_classes: true,
            seed: 4,
            threads: 0,
        }
    }
}

/// A trained sensitivity classifier: standardization + column subset + SVM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainedSensitivity {
    scaler: StandardScaler,
    columns: Vec<usize>,
    model: SvmModel,
}

impl TrainedSensitivity {
    /// Signed decision value for a raw (unscaled) feature row; positive
    /// means high sensitivity.
    pub fn decision(&self, raw_features: &[f64]) -> f64 {
        let scaled = self.scaler.transform_row(raw_features);
        let selected: Vec<f64> = self.columns.iter().map(|&c| scaled[c]).collect();
        self.model.decision(&selected)
    }

    /// Predicts whether a node is highly sensitive.
    pub fn classify(&self, raw_features: &[f64]) -> bool {
        self.decision(raw_features) >= 0.0
    }

    /// Classifies every cell's feature record (single-threaded; see
    /// [`TrainedSensitivity::classify_all_with`]).
    pub fn classify_all(&self, features: &[CellFeatures]) -> Vec<(CellId, bool)> {
        self.classify_all_with(features, 1)
    }

    /// [`TrainedSensitivity::classify_all`] chunked across up to `threads`
    /// worker threads (0 = all cores); results keep input order, so the
    /// output is identical for every thread count.
    pub fn classify_all_with(
        &self,
        features: &[CellFeatures],
        threads: usize,
    ) -> Vec<(CellId, bool)> {
        parallel_map(features, threads, |_, f| (f.cell, self.classify(&f.values)))
    }

    /// Solver diagnostics of the final fitted SVM.
    pub fn train_stats(&self) -> &TrainStats {
        self.model.train_stats()
    }

    /// The feature columns the model consumes (post-standardization).
    pub fn columns(&self) -> &[usize] {
        &self.columns
    }
}

/// Training diagnostics (the material of the paper's Table II and Figs. 5–6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityReport {
    /// Confusion metrics from held-out k-fold predictions.
    pub metrics: BinaryMetrics,
    /// Mean k-fold accuracy at the final hyper-parameters.
    pub cv_accuracy: f64,
    /// ROC curve from held-out decision values.
    pub roc: RocCurve,
    /// Forward-selection curve, when enabled.
    pub selection: Option<SelectionCurve>,
    /// Grid-search evaluations, when enabled.
    pub grid: Option<(f64, f64, f64)>,
    /// Wall-clock training time (selection + search + final fit).
    pub training_time: Duration,
    /// SMO solver diagnostics of the final fit (iterations, kernel-cache
    /// hits/misses, shrink rounds).
    pub solver: TrainStats,
}

/// Trains the sensitivity classifier from labeled sampled cells.
///
/// `features` must cover every labeled cell (indexed by `CellId`); labels
/// are `true` for highly sensitive nodes.
///
/// # Errors
///
/// Returns [`SsresfError::Config`] when fewer than four cells are labeled
/// or only one class is present, plus ML errors from training.
pub fn train_sensitivity(
    features: &[CellFeatures],
    labels: &[(CellId, bool)],
    config: &SensitivityConfig,
) -> Result<(TrainedSensitivity, SensitivityReport), SsresfError> {
    if labels.len() < 4 {
        return Err(SsresfError::Config(format!(
            "need at least 4 labeled cells, got {}",
            labels.len()
        )));
    }
    let started = Instant::now();

    // Assemble raw rows for the labeled cells.
    let mut rows = Vec::with_capacity(labels.len());
    let mut y = Vec::with_capacity(labels.len());
    for &(cell, sensitive) in labels {
        let record = features
            .iter()
            .find(|f| f.cell == cell)
            .ok_or_else(|| SsresfError::Config(format!("no features for cell {}", cell.0)))?;
        rows.push(record.values.clone());
        y.push(if sensitive { 1i8 } else { -1 });
    }

    // Standardize on the training distribution.
    let scaler = StandardScaler::fit(&rows).map_err(SsresfError::Ml)?;
    let scaled = scaler.transform(&rows);
    let full = Dataset::new(scaled, y).map_err(SsresfError::Ml)?;
    if !full.has_both_classes() {
        return Err(SsresfError::Config(
            "labeled cells contain a single class; widen the campaign".into(),
        ));
    }

    let folds = effective_folds(config.folds, &full)?;

    // Class weighting against label imbalance (fault campaigns typically
    // label far fewer sensitive than insensitive nodes).
    let base_svm = if config.balance_classes {
        let pos = full.positives().max(1) as f64;
        let neg = (full.len() - full.positives()).max(1) as f64;
        SvmParams {
            positive_weight: (neg / pos).clamp(1.0 / 16.0, 16.0),
            ..config.svm
        }
    } else {
        config.svm
    };

    // Optional forward feature selection (Fig. 5).
    let (columns, selection) = if config.feature_selection {
        let curve = forward_selection_with(
            &full,
            &base_svm,
            &folds,
            config.max_features,
            config.threads,
        )
        .map_err(SsresfError::Ml)?;
        (curve.best_features().to_vec(), Some(curve))
    } else {
        ((0..full.width()).collect(), None)
    };
    let data = full.select_columns(&columns);

    // Optional (C, γ) grid search.
    let (params, grid) = if config.grid_search {
        let result = grid_search_with(
            &data,
            ssresf_mlcore::gridsearch::DEFAULT_C_GRID,
            ssresf_mlcore::gridsearch::DEFAULT_GAMMA_GRID,
            &folds,
            config.threads,
        )
        .map_err(SsresfError::Ml)?;
        (
            SvmParams {
                c: result.best_c,
                kernel: Kernel::Rbf {
                    gamma: result.best_gamma,
                },
                ..base_svm
            },
            Some((result.best_c, result.best_gamma, result.best_score)),
        )
    } else {
        (base_svm, None)
    };

    // Held-out predictions for the Table-II metrics and Fig.-6 ROC, one
    // fold per job; per-fold outputs are concatenated in fold order, so the
    // metrics are identical for every thread count.
    let splits = folds.split(&data).map_err(SsresfError::Ml)?;
    let fold_outputs = parallel_map(&splits, config.threads, |_, (train_idx, test_idx)| {
        let train = data.subset(train_idx);
        if !train.has_both_classes() || test_idx.is_empty() {
            return Ok::<_, MlError>(None);
        }
        let model = SvmModel::train(&train, &params)?;
        let mut truth = Vec::with_capacity(test_idx.len());
        let mut scores = Vec::with_capacity(test_idx.len());
        for &i in test_idx {
            truth.push(data.labels()[i]);
            scores.push(model.decision(data.row(i)));
        }
        Ok(Some((truth, scores)))
    });
    let mut truth = Vec::new();
    let mut predicted = Vec::new();
    let mut scores = Vec::new();
    for fold in fold_outputs {
        if let Some((fold_truth, fold_scores)) = fold.map_err(SsresfError::Ml)? {
            for (t, d) in fold_truth.into_iter().zip(fold_scores) {
                truth.push(t);
                scores.push(d);
                predicted.push(if d >= 0.0 { 1i8 } else { -1 });
            }
        }
    }
    let metrics = BinaryMetrics::from_predictions(&truth, &predicted);
    let roc = roc_curve(&truth, &scores);
    let cv_accuracy =
        cross_val_score_with(&data, &params, &folds, config.threads).map_err(SsresfError::Ml)?;

    // Final model on all labeled data.
    let model = SvmModel::train(&data, &params).map_err(SsresfError::Ml)?;
    let solver = *model.train_stats();

    Ok((
        TrainedSensitivity {
            scaler,
            columns,
            model,
        },
        SensitivityReport {
            metrics,
            cv_accuracy,
            roc,
            selection,
            grid,
            training_time: started.elapsed(),
            solver,
        },
    ))
}

fn effective_folds(requested: usize, data: &Dataset) -> Result<KFold, SsresfError> {
    let minority = data.positives().min(data.len() - data.positives());
    let k = requested.min(minority.max(2)).min(data.len() / 2).max(2);
    KFold::new(k, 0).map_err(SsresfError::Ml)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssresf_netlist::ModuleClass;

    /// Synthetic feature records: sensitive cells have large fanout.
    fn synthetic(n: usize) -> (Vec<CellFeatures>, Vec<(CellId, bool)>) {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let sensitive = i % 2 == 0;
            let fanout = if sensitive { 8.0 } else { 1.0 } + (i % 5) as f64 * 0.1;
            features.push(CellFeatures {
                cell: CellId(i as u32),
                module_class: ModuleClass::Other,
                values: vec![fanout, (i % 3) as f64, 1.0],
            });
            labels.push((CellId(i as u32), sensitive));
        }
        (features, labels)
    }

    #[test]
    fn trains_and_classifies_synthetic_nodes() {
        let (features, labels) = synthetic(40);
        let (model, report) =
            train_sensitivity(&features, &labels, &SensitivityConfig::default()).unwrap();
        assert!(report.cv_accuracy > 0.9, "{}", report.cv_accuracy);
        assert!(report.metrics.accuracy() > 0.9);
        assert!(report.roc.auc > 0.9);
        // Unseen nodes classified by fanout.
        assert!(model.classify(&[9.0, 1.0, 1.0]));
        assert!(!model.classify(&[1.0, 1.0, 1.0]));
        let all = model.classify_all(&features);
        let correct = all
            .iter()
            .zip(&labels)
            .filter(|((_, p), (_, t))| p == t)
            .count();
        assert!(correct as f64 / labels.len() as f64 > 0.9);
    }

    #[test]
    fn reports_solver_stats_and_threaded_classification_matches() {
        let (features, labels) = synthetic(40);
        let (model, report) =
            train_sensitivity(&features, &labels, &SensitivityConfig::default()).unwrap();
        assert!(report.solver.iterations > 0);
        assert_eq!(report.solver, *model.train_stats());
        let serial = model.classify_all(&features);
        for threads in [2usize, 8] {
            assert_eq!(serial, model.classify_all_with(&features, threads));
        }
    }

    #[test]
    fn feature_selection_reports_a_curve() {
        let (features, labels) = synthetic(30);
        let config = SensitivityConfig {
            feature_selection: true,
            max_features: 3,
            ..SensitivityConfig::default()
        };
        let (model, report) = train_sensitivity(&features, &labels, &config).unwrap();
        let curve = report.selection.unwrap();
        assert!(!curve.scores.is_empty());
        assert_eq!(model.columns().len(), curve.best_count());
        // The informative fanout column is selected first.
        assert_eq!(curve.order[0], 0);
    }

    #[test]
    fn grid_search_reports_chosen_point() {
        let (features, labels) = synthetic(24);
        let config = SensitivityConfig {
            grid_search: true,
            ..SensitivityConfig::default()
        };
        let (_, report) = train_sensitivity(&features, &labels, &config).unwrap();
        let (c, gamma, score) = report.grid.unwrap();
        assert!(c > 0.0 && gamma > 0.0);
        assert!(score > 0.8);
    }

    #[test]
    fn rejects_tiny_or_single_class_data() {
        let (features, labels) = synthetic(3);
        assert!(train_sensitivity(&features, &labels, &SensitivityConfig::default()).is_err());

        let (features, mut labels) = synthetic(10);
        for l in &mut labels {
            l.1 = true;
        }
        assert!(matches!(
            train_sensitivity(&features, &labels, &SensitivityConfig::default()),
            Err(SsresfError::Config(_))
        ));
    }

    #[test]
    fn rejects_missing_feature_records() {
        let (features, mut labels) = synthetic(10);
        labels.push((CellId(999), true));
        assert!(train_sensitivity(&features, &labels, &SensitivityConfig::default()).is_err());
    }
}
