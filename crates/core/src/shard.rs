//! Shard-level campaign execution: split an injection job list into
//! contiguous shards, run each independently (in threads, processes or
//! machines), and deterministically merge the shard outcomes back into one
//! [`CampaignOutcome`].
//!
//! Fault generation is per-cell seeded ([`faults_for_cell`] derives each
//! cell's RNG stream from the campaign seed and the cell id alone), so the
//! full job list is a pure function of `(cells, config)` and every shard
//! can regenerate it locally — a shard assignment is just `(shard,
//! shard_count)`. Injections are mutually independent, so contiguous
//! slicing plus concatenation reproduces the single-process record order
//! exactly:
//!
//! - **Records** are byte-identical to
//!   [`run_campaign_with`](crate::campaign::run_campaign_with) for every
//!   execution mode (scalar, batched, collapsed, lane-refill) — each
//!   fault's verdict is exact regardless of which batch carried it.
//! - **Work and engine telemetry** are additionally *exactly* equal in
//!   scalar mode, where per-injection work does not depend on batch
//!   packing. Batched work totals depend on how faults pack into lanes,
//!   which legitimately differs across shard counts.
//!
//! Each shard re-runs the golden reference itself (its cost is charged
//! once by [`merge_shard_outcomes`], never per shard), which is what makes
//! a shard self-contained enough to run in a separate process — see the
//! `ssresf-serve` crate for the process-level coordinator built on top.

use crate::campaign::{
    faults_for_cell, run_injection_jobs_with_golden, CampaignConfig, CampaignOutcome,
};
use crate::error::SsresfError;
use crate::progress::Instrument;
use crate::workload::Dut;
use ssresf_netlist::CellId;
use ssresf_sim::{EngineTelemetry, Fault};
use std::ops::Range;
use std::time::{Duration, Instant};

/// One shard's result: the slice of the job list it covered plus the
/// campaign outcome of exactly those jobs (golden cost excluded).
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// This shard's index in `0..shard_count`.
    pub shard: usize,
    /// Total number of shards in the plan.
    pub shard_count: usize,
    /// The half-open job-index range this shard covered.
    pub jobs: Range<usize>,
    /// Outcome over the shard's jobs; `total_work` and telemetry cover
    /// injections only (the golden cost lives in the fields below).
    pub outcome: CampaignOutcome,
    /// Work of the shard's own golden reference run.
    pub golden_work: u64,
    /// Engine counters of the shard's own golden reference run.
    pub golden_engine: EngineTelemetry,
    /// Wall-clock time of the shard's own golden reference run.
    pub golden_time: Duration,
}

/// The full injection job list for `(cells, config)` — the list
/// [`run_campaign_with`](crate::campaign::run_campaign_with) would
/// execute, in the same order. Deterministic, so every shard can
/// regenerate it locally.
///
/// # Errors
///
/// [`SsresfError::Config`] when `injections_per_cell` is 0.
pub fn campaign_jobs(
    dut: &Dut<'_>,
    cells: &[CellId],
    config: &CampaignConfig,
) -> Result<Vec<(CellId, Fault)>, SsresfError> {
    if config.injections_per_cell == 0 {
        return Err(SsresfError::Config("injections_per_cell is 0".into()));
    }
    Ok(cells
        .iter()
        .flat_map(|&cell| {
            faults_for_cell(dut, cell, config)
                .into_iter()
                .map(move |f| (cell, f))
        })
        .collect())
}

/// Splits `0..total` into `shard_count` contiguous near-equal ranges
/// (earlier shards take the remainder, matching `div_ceil` chunking).
/// Empty trailing ranges appear when `shard_count > total`.
///
/// # Panics
///
/// Panics when `shard_count` is 0.
pub fn plan_shards(total: usize, shard_count: usize) -> Vec<Range<usize>> {
    assert!(shard_count > 0, "a shard plan needs at least one shard");
    let per = total / shard_count;
    let rem = total % shard_count;
    let mut start = 0;
    (0..shard_count)
        .map(|s| {
            let len = per + usize::from(s < rem);
            let range = start..start + len;
            start += len;
            range
        })
        .collect()
}

/// Runs one shard of the campaign: regenerates the job list, takes the
/// shard's contiguous slice, runs its own golden reference and simulates
/// the slice. Hooks apply to this shard's execution (heartbeats report
/// shard-local progress; the cancel flag aborts the shard).
///
/// # Errors
///
/// Propagates configuration and simulation failures;
/// [`SsresfError::Config`] when `shard >= shard_count`.
pub fn run_campaign_shard(
    dut: &Dut<'_>,
    cells: &[CellId],
    config: &CampaignConfig,
    shard: usize,
    shard_count: usize,
    hooks: &Instrument<'_>,
) -> Result<ShardOutcome, SsresfError> {
    if shard >= shard_count {
        return Err(SsresfError::Config(format!(
            "shard index {shard} out of range for {shard_count} shards"
        )));
    }
    let jobs = campaign_jobs(dut, cells, config)?;
    let range = plan_shards(jobs.len(), shard_count)
        .into_iter()
        .nth(shard)
        .expect("plan covers every shard index");
    let golden_started = Instant::now();
    let golden = dut.run_golden_with_checkpoints(
        config.engine,
        &config.workload,
        config.checkpoint_interval,
    )?;
    let golden_time = golden_started.elapsed();
    let outcome =
        run_injection_jobs_with_golden(dut, jobs[range.clone()].to_vec(), config, &golden, hooks)?;
    Ok(ShardOutcome {
        shard,
        shard_count,
        jobs: range,
        outcome,
        golden_work: golden.outcome.work,
        golden_engine: golden.outcome.engine,
        golden_time,
    })
}

/// Deterministically merges a complete set of shard outcomes back into
/// one [`CampaignOutcome`]: records concatenate in shard order, injection
/// work and telemetry sum, and the golden cost is charged exactly once —
/// so the merged records are byte-identical to a single-process
/// [`run_campaign_with`](crate::campaign::run_campaign_with), and in
/// scalar mode `total_work` and engine telemetry match exactly too.
///
/// # Errors
///
/// [`SsresfError::Config`] when the set is empty, incomplete, overlapping,
/// out of order, or the shards disagree on the golden trace (which would
/// mean they simulated different netlists or workloads).
pub fn merge_shard_outcomes(shards: &[ShardOutcome]) -> Result<CampaignOutcome, SsresfError> {
    let Some(first) = shards.first() else {
        return Err(SsresfError::Config("no shard outcomes to merge".into()));
    };
    let expected = first.shard_count;
    if shards.len() != expected {
        return Err(SsresfError::Config(format!(
            "expected {expected} shard outcomes, got {}",
            shards.len()
        )));
    }
    let mut next_start = 0usize;
    for (i, shard) in shards.iter().enumerate() {
        if shard.shard != i || shard.shard_count != expected {
            return Err(SsresfError::Config(format!(
                "shard outcomes out of order: slot {i} holds shard {}/{}",
                shard.shard, shard.shard_count
            )));
        }
        if shard.jobs.start != next_start {
            return Err(SsresfError::Config(format!(
                "shard {i} covers jobs {:?} but the previous shard ended at {next_start}",
                shard.jobs
            )));
        }
        next_start = shard.jobs.end;
        if shard.outcome.golden != first.outcome.golden
            || shard.outcome.golden_activity != first.outcome.golden_activity
        {
            return Err(SsresfError::Config(format!(
                "shard {i} produced a different golden trace: the shards did \
                 not simulate the same netlist and workload"
            )));
        }
    }

    let mut merged = CampaignOutcome {
        golden: first.outcome.golden.clone(),
        golden_activity: first.outcome.golden_activity.clone(),
        records: Vec::with_capacity(next_start),
        simulation_time: Duration::ZERO,
        // The golden reference is charged once, from the slowest shard
        // (every shard ran it; in a process fleet they overlap).
        golden_time: shards.iter().map(|s| s.golden_time).max().unwrap(),
        total_work: first.golden_work,
        telemetry: crate::campaign::CampaignTelemetry {
            engine: first.golden_engine,
            checkpoint_restores: 0,
            early_stop_truncations: 0,
            collapsed_faults: 0,
            lane_refills: 0,
        },
    };
    for shard in shards {
        merged.records.extend(shard.outcome.records.iter().cloned());
        merged.total_work += shard.outcome.total_work;
        merged
            .telemetry
            .engine
            .accumulate(shard.outcome.telemetry.engine);
        merged.telemetry.checkpoint_restores += shard.outcome.telemetry.checkpoint_restores;
        merged.telemetry.early_stop_truncations += shard.outcome.telemetry.early_stop_truncations;
        merged.telemetry.collapsed_faults += shard.outcome.telemetry.collapsed_faults;
        merged.telemetry.lane_refills += shard.outcome.telemetry.lane_refills;
        merged.simulation_time += shard.outcome.simulation_time;
    }
    merged.simulation_time += merged.golden_time;
    Ok(merged)
}

/// Convenience single-process sharded run: executes every shard
/// sequentially in this process and merges. Exists for conformance and
/// tests — the point of sharding is the process-level coordinator in
/// `ssresf-serve`, which runs shards in worker processes.
///
/// # Errors
///
/// Propagates shard execution and merge failures.
pub fn run_sharded_campaign(
    dut: &Dut<'_>,
    cells: &[CellId],
    config: &CampaignConfig,
    shard_count: usize,
    hooks: &Instrument<'_>,
) -> Result<CampaignOutcome, SsresfError> {
    let shards = (0..shard_count)
        .map(|s| run_campaign_shard(dut, cells, config, s, shard_count, hooks))
        .collect::<Result<Vec<_>, _>>()?;
    merge_shard_outcomes(&shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign_with;
    use crate::workload::{EngineKind, Workload};
    use ssresf_netlist::{CellKind, Design, FlatNetlist, ModuleBuilder, PortDir};

    fn counter_netlist() -> FlatNetlist {
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("ctr");
        let clk = mb.port("clk", PortDir::Input);
        let rst_n = mb.port("rst_n", PortDir::Input);
        let mut qs = Vec::new();
        for i in 0..4 {
            qs.push(mb.port(format!("q_{i}"), PortDir::Output));
        }
        let mut carry = qs[0];
        for i in 0..4 {
            let d = mb.net(format!("d_{i}"));
            if i == 0 {
                mb.cell("u_inc_0", CellKind::Inv, &[qs[0]], &[d]).unwrap();
            } else {
                mb.cell(format!("u_inc_{i}"), CellKind::Xor2, &[qs[i], carry], &[d])
                    .unwrap();
                if i + 1 < 4 {
                    let c = mb.net(format!("c_{i}"));
                    mb.cell(format!("u_car_{i}"), CellKind::And2, &[qs[i], carry], &[c])
                        .unwrap();
                    carry = c;
                }
            }
            mb.cell(
                format!("u_ff_{i}"),
                CellKind::Dffr,
                &[clk, d, rst_n],
                &[qs[i]],
            )
            .unwrap();
        }
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        design.flatten().unwrap()
    }

    #[test]
    fn plans_are_contiguous_and_complete() {
        for (total, shards) in [(10, 3), (7, 7), (3, 5), (0, 2), (100, 1)] {
            let plan = plan_shards(total, shards);
            assert_eq!(plan.len(), shards);
            assert_eq!(plan[0].start, 0);
            assert_eq!(plan.last().unwrap().end, total);
            for w in plan.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            // Near-equal: lengths differ by at most 1.
            let lens: Vec<usize> = plan.iter().map(Range::len).collect();
            assert!(lens.iter().max().unwrap() - lens.iter().min().unwrap() <= 1);
        }
    }

    #[test]
    fn sharded_scalar_run_is_exactly_the_single_process_run() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let cells: Vec<CellId> = flat.iter_cells().map(|(id, _)| id).collect();
        let config = CampaignConfig {
            workload: Workload {
                reset_cycles: 2,
                run_cycles: 20,
            },
            injections_per_cell: 2,
            threads: 1,
            ..CampaignConfig::default()
        };
        let reference = run_campaign_with(&dut, &cells, &config, &Instrument::default()).unwrap();
        for shard_count in [1, 2, 4] {
            let merged =
                run_sharded_campaign(&dut, &cells, &config, shard_count, &Instrument::default())
                    .unwrap();
            assert_eq!(merged.records, reference.records, "{shard_count} shards");
            assert_eq!(merged.golden, reference.golden);
            assert_eq!(merged.golden_activity, reference.golden_activity);
            assert_eq!(merged.total_work, reference.total_work);
            assert_eq!(merged.telemetry, reference.telemetry);
        }
    }

    #[test]
    fn sharded_batched_records_match_single_process() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let cells: Vec<CellId> = flat.iter_cells().map(|(id, _)| id).collect();
        let config = CampaignConfig {
            workload: Workload {
                reset_cycles: 2,
                run_cycles: 20,
            },
            injections_per_cell: 2,
            threads: 1,
            engine: EngineKind::Levelized,
            batching: true,
            batch_lanes: 64,
            collapse_faults: true,
            lane_refill: true,
            ..CampaignConfig::default()
        };
        let reference = run_campaign_with(&dut, &cells, &config, &Instrument::default()).unwrap();
        for shard_count in [2, 4] {
            let merged =
                run_sharded_campaign(&dut, &cells, &config, shard_count, &Instrument::default())
                    .unwrap();
            // Verdicts are exact regardless of batch packing, so records
            // stay byte-identical; work totals may differ (packing).
            assert_eq!(merged.records, reference.records, "{shard_count} shards");
            assert_eq!(merged.golden, reference.golden);
        }
    }

    #[test]
    fn merge_rejects_incomplete_or_reordered_sets() {
        let flat = counter_netlist();
        let dut = Dut::from_conventions(&flat).unwrap();
        let cells: Vec<CellId> = flat.iter_cells().map(|(id, _)| id).collect();
        let config = CampaignConfig {
            workload: Workload {
                reset_cycles: 2,
                run_cycles: 10,
            },
            threads: 1,
            ..CampaignConfig::default()
        };
        let hooks = Instrument::default();
        let shards: Vec<ShardOutcome> = (0..2)
            .map(|s| run_campaign_shard(&dut, &cells, &config, s, 2, &hooks).unwrap())
            .collect();
        assert!(merge_shard_outcomes(&[]).is_err());
        assert!(merge_shard_outcomes(&shards[..1]).is_err());
        let swapped = vec![shards[1].clone(), shards[0].clone()];
        assert!(merge_shard_outcomes(&swapped).is_err());
        assert!(merge_shard_outcomes(&shards).is_ok());
    }
}
