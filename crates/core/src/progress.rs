//! Campaign progress reporting and pipeline instrumentation hooks.
//!
//! A [`ProgressSink`] receives [`CampaignProgress`] reports while a
//! campaign runs: one `Start` report before workers spawn, periodic
//! `Heartbeat` reports as injections complete, and one `Finished` report
//! (with per-worker utilization) after workers join. Attach a sink — and
//! optionally a [`MetricsRegistry`] — through [`Instrument`], accepted by
//! [`run_campaign_with`](crate::campaign::run_campaign_with) and
//! [`Ssresf::analyze_with`](crate::framework::Ssresf::analyze_with).
//! Instrumentation is observational only: attaching it never changes
//! records or traces.

use ssresf_telemetry::MetricsRegistry;
use std::sync::atomic::AtomicBool;
use std::time::Duration;

/// Default number of completed injections between heartbeat reports.
pub const DEFAULT_HEARTBEAT_EVERY: usize = 64;

/// Which point of the campaign a [`CampaignProgress`] report describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressPhase {
    /// Before any injection has run (golden run already complete).
    Start,
    /// A periodic mid-campaign report.
    Heartbeat,
    /// After every worker joined; totals are final and
    /// [`CampaignProgress::workers`] is populated.
    Finished,
}

/// Utilization of one campaign worker thread.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerUtilization {
    /// Worker index (chunk order).
    pub worker: usize,
    /// Injection jobs the worker completed.
    pub jobs: usize,
    /// Wall-clock time the worker spent simulating.
    pub busy: Duration,
}

/// A progress report delivered to a [`ProgressSink`].
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignProgress {
    /// Where in the campaign this report was taken.
    pub phase: ProgressPhase,
    /// Injections completed so far.
    pub completed: usize,
    /// Total injections the campaign will run.
    pub total: usize,
    /// Soft errors observed so far.
    pub soft_errors: usize,
    /// Wall-clock time since the campaign started injecting.
    pub elapsed: Duration,
    /// Per-worker utilization; empty until the `Finished` report.
    pub workers: Vec<WorkerUtilization>,
}

impl CampaignProgress {
    /// Completed injections per second of elapsed time (0 when no time has
    /// passed).
    pub fn throughput_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.completed as f64 / secs
        } else {
            0.0
        }
    }

    /// Completed fraction in `[0, 1]` (1 when the campaign is empty).
    pub fn fraction_done(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.completed as f64 / self.total as f64
        }
    }
}

/// Receives progress reports from a running campaign.
///
/// Implementations must be `Sync`: heartbeats are delivered concurrently
/// from worker threads.
pub trait ProgressSink: Sync {
    /// Called with each progress report.
    fn report(&self, progress: &CampaignProgress);
}

/// Observability hooks threaded through a campaign or a full analysis.
///
/// All fields are optional; `Instrument::default()` is a no-op equivalent
/// to running uninstrumented.
#[derive(Clone, Copy, Default)]
pub struct Instrument<'a> {
    /// Receives counters, gauges, histograms and stage timings.
    pub metrics: Option<&'a MetricsRegistry>,
    /// Receives campaign progress reports.
    pub progress: Option<&'a dyn ProgressSink>,
    /// Completed injections between heartbeats (0 = use
    /// [`DEFAULT_HEARTBEAT_EVERY`]).
    pub heartbeat_every: usize,
    /// External cancellation flag. When set mid-campaign, workers stop at
    /// the next poll point (between scalar injections, between batches,
    /// and between lane-refill rounds inside a queued batch) and the
    /// campaign returns [`SsresfError::Cancelled`](crate::SsresfError).
    pub cancel: Option<&'a AtomicBool>,
}

impl std::fmt::Debug for Instrument<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instrument")
            .field("metrics", &self.metrics.is_some())
            .field("progress", &self.progress.is_some())
            .field("heartbeat_every", &self.heartbeat_every)
            .field("cancel", &self.cancel.is_some())
            .finish()
    }
}

impl<'a> Instrument<'a> {
    /// Hooks that only record metrics.
    pub fn with_metrics(metrics: &'a MetricsRegistry) -> Self {
        Instrument {
            metrics: Some(metrics),
            ..Instrument::default()
        }
    }

    /// The effective heartbeat period.
    pub(crate) fn heartbeat(&self) -> usize {
        if self.heartbeat_every == 0 {
            DEFAULT_HEARTBEAT_EVERY
        } else {
            self.heartbeat_every
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_and_fraction_handle_zero() {
        let p = CampaignProgress {
            phase: ProgressPhase::Start,
            completed: 0,
            total: 0,
            soft_errors: 0,
            elapsed: Duration::ZERO,
            workers: Vec::new(),
        };
        assert_eq!(p.throughput_per_second(), 0.0);
        assert_eq!(p.fraction_done(), 1.0);

        let p = CampaignProgress {
            phase: ProgressPhase::Heartbeat,
            completed: 50,
            total: 200,
            soft_errors: 5,
            elapsed: Duration::from_secs(2),
            workers: Vec::new(),
        };
        assert_eq!(p.throughput_per_second(), 25.0);
        assert_eq!(p.fraction_done(), 0.25);
    }

    #[test]
    fn default_instrument_is_inert() {
        let hooks = Instrument::default();
        assert!(hooks.metrics.is_none());
        assert!(hooks.progress.is_none());
        assert_eq!(hooks.heartbeat(), DEFAULT_HEARTBEAT_EVERY);
    }
}
