//! Framework-level error type.

use ssresf_mlcore::MlError;
use ssresf_netlist::NetlistError;
use ssresf_radiation::RadiationError;
use ssresf_sim::SimError;
use std::fmt;

/// Errors produced by the SSRESF pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum SsresfError {
    /// Netlist construction or elaboration failure.
    Netlist(NetlistError),
    /// Simulation failure.
    Sim(SimError),
    /// Radiation-model failure.
    Radiation(RadiationError),
    /// Machine-learning failure.
    Ml(MlError),
    /// The netlist has no cells.
    EmptyNetlist,
    /// A required design convention is missing (clock or reset net).
    MissingNet(String),
    /// Invalid framework configuration.
    Config(String),
    /// The campaign was cancelled through an external cancellation flag
    /// ([`Instrument::cancel`](crate::Instrument)) before it completed.
    Cancelled,
}

impl fmt::Display for SsresfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SsresfError::Netlist(e) => write!(f, "netlist error: {e}"),
            SsresfError::Sim(e) => write!(f, "simulation error: {e}"),
            SsresfError::Radiation(e) => write!(f, "radiation model error: {e}"),
            SsresfError::Ml(e) => write!(f, "ml error: {e}"),
            SsresfError::EmptyNetlist => write!(f, "netlist has no cells"),
            SsresfError::MissingNet(name) => write!(f, "required net `{name}` not found"),
            SsresfError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            SsresfError::Cancelled => write!(f, "campaign cancelled"),
        }
    }
}

impl std::error::Error for SsresfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SsresfError::Netlist(e) => Some(e),
            SsresfError::Sim(e) => Some(e),
            SsresfError::Radiation(e) => Some(e),
            SsresfError::Ml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for SsresfError {
    fn from(e: NetlistError) -> Self {
        SsresfError::Netlist(e)
    }
}

impl From<SimError> for SsresfError {
    fn from(e: SimError) -> Self {
        SsresfError::Sim(e)
    }
}

impl From<RadiationError> for SsresfError {
    fn from(e: RadiationError) -> Self {
        SsresfError::Radiation(e)
    }
}

impl From<MlError> for SsresfError {
    fn from(e: MlError) -> Self {
        SsresfError::Ml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        use std::error::Error as _;
        let err: SsresfError = NetlistError::NoTop.into();
        assert!(err.source().is_some());
        let err: SsresfError = MlError::Param("C".into()).into();
        assert!(err.to_string().contains("ml error"));
        assert!(SsresfError::EmptyNetlist.source().is_none());
    }
}
