//! Sensitivity-guided selective hardening.
//!
//! The payoff of SSRESF's fast classification: instead of hardening the
//! whole design (≈3× area for full TMR), spend a bounded area budget on the
//! nodes the SVM ranks most sensitive. [`selective_harden`] produces a
//! TMR-hardened copy of the netlist; re-running the injection campaign on
//! the same fault list quantifies the SER reduction per unit area.

use crate::error::SsresfError;
use crate::framework::Analysis;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use ssresf_netlist::{harden::sequential_only, CellId, FlatNetlist, HardeningReport};

/// How hardening targets are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HardeningStrategy {
    /// The SVM's predicted-sensitive nodes, ranked by decision value
    /// (most sensitive first) — the SSRESF-guided flow.
    SvmGuided,
    /// Uniformly random sequential cells (the unguided baseline).
    Random {
        /// Selection seed.
        seed: u64,
    },
}

/// Outcome of a selective-hardening pass.
#[derive(Debug, Clone)]
pub struct SelectiveHardening {
    /// The hardened netlist (a transformed copy).
    pub netlist: FlatNetlist,
    /// The transformation report.
    pub report: HardeningReport,
    /// Strategy used.
    pub strategy: HardeningStrategy,
}

/// Hardens up to `budget_fraction` of the netlist's sequential cells,
/// selected by `strategy`, returning a transformed copy.
///
/// # Errors
///
/// Returns [`SsresfError::Config`] for a budget outside `(0, 1]` and
/// propagates netlist-edit failures.
pub fn selective_harden(
    netlist: &FlatNetlist,
    analysis: &Analysis,
    budget_fraction: f64,
    strategy: HardeningStrategy,
) -> Result<SelectiveHardening, SsresfError> {
    if !(budget_fraction > 0.0 && budget_fraction <= 1.0) {
        return Err(SsresfError::Config(format!(
            "hardening budget {budget_fraction} outside (0, 1]"
        )));
    }
    let sequential: Vec<CellId> = netlist
        .iter_cells()
        .filter(|(_, c)| c.kind.is_sequential())
        .map(|(id, _)| id)
        .collect();
    let budget = ((sequential.len() as f64 * budget_fraction).ceil() as usize)
        .min(sequential.len())
        .max(1);

    let targets: Vec<CellId> = match strategy {
        HardeningStrategy::SvmGuided => {
            // Rank predicted-sensitive sequential cells by decision value.
            let extractor = ssresf_netlist::FeatureExtractor::new(netlist)?;
            let mut ranked: Vec<(CellId, f64)> = analysis
                .predictions
                .iter()
                .filter(|&&(cell, sensitive)| sensitive && netlist.cell(cell).kind.is_sequential())
                .map(|&(cell, _)| {
                    let features =
                        extractor.extract_cell(cell, Some(&analysis.campaign.golden_activity));
                    (cell, analysis.classifier.decision(&features.values))
                })
                .collect();
            ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            sequential_only(netlist, &ranked.iter().map(|&(c, _)| c).collect::<Vec<_>>())
                .into_iter()
                .take(budget)
                .collect()
        }
        HardeningStrategy::Random { seed } => {
            let mut pool = sequential.clone();
            pool.shuffle(&mut StdRng::seed_from_u64(seed));
            pool.truncate(budget);
            pool
        }
    };

    let mut hardened = netlist.clone();
    let report = hardened.tmr_harden(&targets)?;
    Ok(SelectiveHardening {
        netlist: hardened,
        report,
        strategy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ssresf, SsresfConfig, Workload};
    use ssresf_socgen::{build_soc, SocConfig};

    fn quick_analysis() -> (FlatNetlist, Analysis) {
        let soc = build_soc(&SocConfig::table1()[0]).unwrap();
        let netlist = soc.design.flatten().unwrap();
        let mut config = SsresfConfig::default();
        config.sampling.fraction = 0.08;
        config.campaign.workload = Workload {
            reset_cycles: 3,
            run_cycles: 50,
        };
        let analysis = Ssresf::new(config).analyze(&netlist).unwrap();
        (netlist, analysis)
    }

    #[test]
    fn svm_guided_hardening_produces_valid_netlist() {
        let (netlist, analysis) = quick_analysis();
        let result =
            selective_harden(&netlist, &analysis, 0.2, HardeningStrategy::SvmGuided).unwrap();
        assert!(!result.report.hardened.is_empty());
        assert!(result.netlist.cells().len() > netlist.cells().len());
        // Structural validity: still simulatable.
        result.netlist.levelize().unwrap();
        // Area overhead is bounded by the budget (TMR triples only targets).
        assert!(result.report.area_overhead() < 3.0);
    }

    #[test]
    fn random_strategy_is_seed_deterministic() {
        let (netlist, analysis) = quick_analysis();
        let a = selective_harden(
            &netlist,
            &analysis,
            0.1,
            HardeningStrategy::Random { seed: 3 },
        )
        .unwrap();
        let b = selective_harden(
            &netlist,
            &analysis,
            0.1,
            HardeningStrategy::Random { seed: 3 },
        )
        .unwrap();
        assert_eq!(a.report.hardened, b.report.hardened);
    }

    #[test]
    fn budget_is_validated() {
        let (netlist, analysis) = quick_analysis();
        assert!(selective_harden(&netlist, &analysis, 0.0, HardeningStrategy::SvmGuided).is_err());
        assert!(selective_harden(&netlist, &analysis, 1.5, HardeningStrategy::SvmGuided).is_err());
    }
}
