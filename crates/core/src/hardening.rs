//! Sensitivity-guided selective hardening.
//!
//! The payoff of SSRESF's fast classification: instead of hardening the
//! whole design (≈3× area for full TMR), spend a bounded area budget on the
//! nodes the SVM ranks most sensitive. [`selective_harden`] produces a
//! TMR-hardened copy of the netlist; re-running the injection campaign on
//! the same fault list quantifies the SER reduction per unit area.

use crate::campaign::{run_injection_jobs, CampaignConfig, InjectionRecord};
use crate::error::SsresfError;
use crate::framework::Analysis;
use crate::mission::{
    mission_faults_for_cell, run_mission_campaign_with, segment_stats, MissionOutcome,
};
use crate::progress::Instrument;
use crate::workload::{Dut, Workload};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use ssresf_netlist::{harden::sequential_only, CellId, FlatNetlist, HardeningReport};
use ssresf_radiation::{MissionProfile, WeibullCurve};
use ssresf_sim::Fault;
use std::collections::BTreeSet;

/// How hardening targets are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HardeningStrategy {
    /// The SVM's predicted-sensitive nodes, ranked by decision value
    /// (most sensitive first) — the SSRESF-guided flow.
    SvmGuided,
    /// Uniformly random sequential cells (the unguided baseline).
    Random {
        /// Selection seed.
        seed: u64,
    },
}

/// Outcome of a selective-hardening pass.
#[derive(Debug, Clone)]
pub struct SelectiveHardening {
    /// The hardened netlist (a transformed copy).
    pub netlist: FlatNetlist,
    /// The transformation report.
    pub report: HardeningReport,
    /// Strategy used.
    pub strategy: HardeningStrategy,
}

/// Hardens up to `budget_fraction` of the netlist's sequential cells,
/// selected by `strategy`, returning a transformed copy.
///
/// # Errors
///
/// Returns [`SsresfError::Config`] for a budget outside `(0, 1]` and
/// propagates netlist-edit failures.
pub fn selective_harden(
    netlist: &FlatNetlist,
    analysis: &Analysis,
    budget_fraction: f64,
    strategy: HardeningStrategy,
) -> Result<SelectiveHardening, SsresfError> {
    if !(budget_fraction > 0.0 && budget_fraction <= 1.0) {
        return Err(SsresfError::Config(format!(
            "hardening budget {budget_fraction} outside (0, 1]"
        )));
    }
    let sequential: Vec<CellId> = netlist
        .iter_cells()
        .filter(|(_, c)| c.kind.is_sequential())
        .map(|(id, _)| id)
        .collect();
    let budget = ((sequential.len() as f64 * budget_fraction).ceil() as usize)
        .min(sequential.len())
        .max(1);

    let targets: Vec<CellId> = match strategy {
        HardeningStrategy::SvmGuided => {
            // Rank predicted-sensitive sequential cells by decision value,
            // reusing the feature records the pipeline already extracted.
            let mut ranked: Vec<(CellId, f64)> = analysis
                .predictions
                .iter()
                .filter(|&&(cell, sensitive)| sensitive && netlist.cell(cell).kind.is_sequential())
                .map(|&(cell, _)| {
                    let features = analysis.features_of(cell);
                    (cell, analysis.classifier.decision(&features.values))
                })
                .collect();
            ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            sequential_only(netlist, &ranked.iter().map(|&(c, _)| c).collect::<Vec<_>>())
                .into_iter()
                .take(budget)
                .collect()
        }
        HardeningStrategy::Random { seed } => {
            let mut pool = sequential.clone();
            pool.shuffle(&mut StdRng::seed_from_u64(seed));
            pool.truncate(budget);
            pool
        }
    };

    let mut hardened = netlist.clone();
    let report = hardened.tmr_harden(&targets)?;
    Ok(SelectiveHardening {
        netlist: hardened,
        report,
        strategy,
    })
}

/// A netlist-level mitigation technique.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MitigationKind {
    /// Triple modular redundancy: targets are triplicated behind a
    /// majority voter ([`FlatNetlist::tmr_harden`]). The SER effect is
    /// simulated — the voter masks single-replica upsets in the re-run
    /// campaign.
    Tmr,
    /// Cell hardening: targets are swapped in place for their
    /// radiation-hardened drop-in variants
    /// ([`FlatNetlist::ff_harden`]). Hardened kinds are
    /// behavior-identical, so the SER effect is physical rather than
    /// logical: a strike whose segment LET is below the hardened cell's
    /// Weibull threshold deposits no upset and is masked without
    /// simulation.
    FfHardening,
}

impl MitigationKind {
    /// Short stable name used in reports and telemetry keys.
    pub fn name(self) -> &'static str {
        match self {
            MitigationKind::Tmr => "tmr",
            MitigationKind::FfHardening => "ff_hardening",
        }
    }
}

/// One mitigation to evaluate differentially: a technique plus its target
/// cells (on the *baseline* netlist's cell ids).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MitigationPlan {
    /// The technique.
    pub kind: MitigationKind,
    /// Cells to harden.
    pub targets: Vec<CellId>,
}

/// The differential result of one mitigation.
#[derive(Debug, Clone)]
pub struct MitigationOutcome {
    /// The evaluated technique.
    pub kind: MitigationKind,
    /// The netlist-transform report (cells touched, area cost).
    pub report: HardeningReport,
    /// The mission campaign re-run on the mitigated netlist under the
    /// baseline's exact injection schedule.
    pub mission: MissionOutcome,
    /// Injections answered as masked without simulation (FF hardening
    /// below the Weibull LET threshold); always 0 for TMR.
    pub masked_injections: usize,
    /// `SER(baseline) − SER(mitigated)`: positive when the mitigation
    /// helps.
    pub ser_delta: f64,
}

/// Baseline-vs-mitigated comparison under one mission.
#[derive(Debug, Clone)]
pub struct DifferentialOutcome {
    /// The unmitigated mission campaign.
    pub baseline: MissionOutcome,
    /// One outcome per evaluated plan, in plan order.
    pub mitigations: Vec<MitigationOutcome>,
}

impl DifferentialOutcome {
    /// Serializes the comparison (mission SER breakdowns, SER deltas, area
    /// costs) as a JSON object.
    pub fn to_json(&self) -> ssresf_json::Value {
        use ssresf_json::Value;
        let mitigations: Vec<Value> = self
            .mitigations
            .iter()
            .map(|m| {
                ssresf_json::object([
                    ("kind", Value::String(m.kind.name().to_owned())),
                    ("mission", m.mission.to_json()),
                    ("ser_delta", Value::Number(m.ser_delta)),
                    (
                        "masked_injections",
                        Value::Number(m.masked_injections as f64),
                    ),
                    (
                        "hardened_cells",
                        Value::Number(m.report.hardened.len() as f64),
                    ),
                    (
                        "area",
                        ssresf_json::object([
                            ("added_cells", Value::Number(m.report.added_cells as f64)),
                            (
                                "transistors_before",
                                Value::Number(m.report.transistors_before as f64),
                            ),
                            (
                                "transistors_after",
                                Value::Number(m.report.transistors_after as f64),
                            ),
                            ("overhead", Value::Number(m.report.area_overhead())),
                        ]),
                    ),
                ])
            })
            .collect();
        ssresf_json::object([
            ("baseline", self.baseline.to_json()),
            ("mitigations", Value::Array(mitigations)),
        ])
    }
}

/// Runs a differential mission campaign: the baseline netlist and every
/// mitigated variant are exposed to the **same injection schedule** (the
/// transforms preserve baseline cell ids and output nets, so `(cell,
/// fault)` pairs stay addressable), and each mitigation reports its SER
/// delta and area cost.
///
/// The baseline run is instrumented through `hooks` (publishing the usual
/// `campaign.*` and `mission.*` keys); mitigated re-runs are not, keeping
/// the exported per-segment breakdown unambiguous. Mitigation summary
/// counters (`mission.mitigation.<name>.soft_errors` / `.masked`) are
/// published per plan.
///
/// # Errors
///
/// Returns [`SsresfError::Config`] for an invalid mission or config and
/// propagates transform and simulation failures.
pub fn run_differential_campaign(
    netlist: &FlatNetlist,
    cells: &[CellId],
    config: &CampaignConfig,
    mission: &MissionProfile,
    plans: &[MitigationPlan],
    hooks: &Instrument<'_>,
) -> Result<DifferentialOutcome, SsresfError> {
    let dut = Dut::from_conventions(netlist)?;
    // Baseline run: validates the mission/config and publishes the usual
    // mission.* counters through `hooks`.
    let baseline = run_mission_campaign_with(&dut, cells, config, mission, hooks)?;
    let effective = CampaignConfig {
        workload: Workload {
            reset_cycles: config.workload.reset_cycles,
            run_cycles: mission.total_cycles(),
        },
        ..*config
    };
    // The shared schedule: regenerated deterministically from the baseline
    // netlist — byte-identical to the jobs the baseline run simulated.
    let jobs: Vec<(CellId, Fault)> = cells
        .iter()
        .flat_map(|&cell| {
            mission_faults_for_cell(&dut, cell, config, mission)
                .into_iter()
                .map(move |f| (cell, f))
        })
        .collect();

    let mut mitigations = Vec::with_capacity(plans.len());
    for plan in plans {
        let mut transformed = netlist.clone();
        let report = match plan.kind {
            MitigationKind::Tmr => transformed.tmr_harden(&plan.targets)?,
            MitigationKind::FfHardening => transformed.ff_harden(&plan.targets),
        };
        let mitigated_dut = Dut::from_conventions(&transformed)?;
        let hardened: BTreeSet<CellId> = report.hardened.iter().copied().collect();

        // FF hardening is behavior-identical, so its SER effect is decided
        // by physics: a strike below the hardened cell's Weibull threshold
        // deposits no charge and is masked outright. The exact class curve
        // is used rather than the calibration-point database, whose
        // log-linear interpolation smears the threshold. TMR masking is
        // left to the simulator (the voter does it).
        let masked = |cell: CellId, fault: &Fault| -> bool {
            if plan.kind != MitigationKind::FfHardening || !hardened.contains(&cell) {
                return false;
            }
            let segment = &mission.segments[mission.segment_at(fault.cycle())];
            let class = transformed.cell(cell).kind.radiation_class();
            let curve = WeibullCurve::default_for(class);
            curve.cross_section(segment.environment.let_value).value() <= 0.0
        };
        let mut active = Vec::with_capacity(jobs.len());
        let mut is_masked = vec![false; jobs.len()];
        for (i, (cell, fault)) in jobs.iter().enumerate() {
            if masked(*cell, fault) {
                is_masked[i] = true;
            } else {
                active.push((*cell, *fault));
            }
        }
        let masked_injections = jobs.len() - active.len();
        let outcome =
            run_injection_jobs(&mitigated_dut, active, &effective, &Instrument::default())?;

        // Merge simulated and masked records back into schedule order.
        let mut merged = Vec::with_capacity(jobs.len());
        let mut simulated = outcome.records.iter();
        for (i, (cell, fault)) in jobs.iter().enumerate() {
            if is_masked[i] {
                merged.push(InjectionRecord {
                    cell: *cell,
                    fault: *fault,
                    soft_error: false,
                    divergences: 0,
                });
            } else {
                merged.push(simulated.next().expect("one record per active job").clone());
            }
        }
        let mut campaign = outcome;
        campaign.records = merged;
        let segments = segment_stats(mission, &campaign.records);
        let mission_outcome = MissionOutcome { campaign, segments };
        let ser_delta = baseline.ser() - mission_outcome.ser();
        if let Some(metrics) = hooks.metrics {
            metrics.counter_add(
                &format!("mission.mitigation.{}.soft_errors", plan.kind.name()),
                mission_outcome.campaign.soft_errors() as u64,
            );
            metrics.counter_add(
                &format!("mission.mitigation.{}.masked", plan.kind.name()),
                masked_injections as u64,
            );
        }
        mitigations.push(MitigationOutcome {
            kind: plan.kind,
            report,
            mission: mission_outcome,
            masked_injections,
            ser_delta,
        });
    }

    Ok(DifferentialOutcome {
        baseline,
        mitigations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ssresf, SsresfConfig, Workload};
    use ssresf_socgen::{build_soc, SocConfig};

    fn quick_analysis() -> (FlatNetlist, Analysis) {
        let soc = build_soc(&SocConfig::table1()[0]).unwrap();
        let netlist = soc.design.flatten().unwrap();
        let mut config = SsresfConfig::default();
        config.sampling.fraction = 0.08;
        config.campaign.workload = Workload {
            reset_cycles: 3,
            run_cycles: 50,
        };
        let analysis = Ssresf::new(config).analyze(&netlist).unwrap();
        (netlist, analysis)
    }

    #[test]
    fn svm_guided_hardening_produces_valid_netlist() {
        let (netlist, analysis) = quick_analysis();
        let result =
            selective_harden(&netlist, &analysis, 0.2, HardeningStrategy::SvmGuided).unwrap();
        assert!(!result.report.hardened.is_empty());
        assert!(result.netlist.cells().len() > netlist.cells().len());
        // Structural validity: still simulatable.
        result.netlist.levelize().unwrap();
        // Area overhead is bounded by the budget (TMR triples only targets).
        assert!(result.report.area_overhead() < 3.0);
    }

    #[test]
    fn random_strategy_is_seed_deterministic() {
        let (netlist, analysis) = quick_analysis();
        let a = selective_harden(
            &netlist,
            &analysis,
            0.1,
            HardeningStrategy::Random { seed: 3 },
        )
        .unwrap();
        let b = selective_harden(
            &netlist,
            &analysis,
            0.1,
            HardeningStrategy::Random { seed: 3 },
        )
        .unwrap();
        assert_eq!(a.report.hardened, b.report.hardened);
    }

    #[test]
    fn budget_is_validated() {
        let (netlist, analysis) = quick_analysis();
        assert!(selective_harden(&netlist, &analysis, 0.0, HardeningStrategy::SvmGuided).is_err());
        assert!(selective_harden(&netlist, &analysis, 1.5, HardeningStrategy::SvmGuided).is_err());
    }

    use ssresf_netlist::{CellKind, Design, ModuleBuilder, PortDir};

    /// Two observable flops plus a small logic cloud.
    fn mixed_netlist() -> FlatNetlist {
        let mut design = Design::new();
        let mut mb = ModuleBuilder::new("mix");
        let clk = mb.port("clk", PortDir::Input);
        let rst_n = mb.port("rst_n", PortDir::Input);
        let q0 = mb.port("q0", PortDir::Output);
        let q1 = mb.port("q1", PortDir::Output);
        let y = mb.port("y", PortDir::Output);
        let d0 = mb.net("d0");
        let d1 = mb.net("d1");
        mb.cell("u_inv", CellKind::Inv, &[q0], &[d0]).unwrap();
        mb.cell("u_xor", CellKind::Xor2, &[q0, q1], &[d1]).unwrap();
        mb.cell("u_and", CellKind::And2, &[q0, q1], &[y]).unwrap();
        mb.cell("u_ff0", CellKind::Dffr, &[clk, d0, rst_n], &[q0])
            .unwrap();
        mb.cell("u_ff1", CellKind::Dffr, &[clk, d1, rst_n], &[q1])
            .unwrap();
        let id = design.add_module(mb.finish()).unwrap();
        design.set_top(id).unwrap();
        design.flatten().unwrap()
    }

    fn differential_fixture() -> (FlatNetlist, Vec<CellId>, Vec<CellId>, CampaignConfig) {
        let flat = mixed_netlist();
        let cells: Vec<CellId> = flat.iter_cells().map(|(id, _)| id).collect();
        let flops: Vec<CellId> = flat
            .iter_cells()
            .filter(|(_, c)| c.kind.is_sequential())
            .map(|(id, _)| id)
            .collect();
        let config = CampaignConfig {
            workload: Workload {
                reset_cycles: 2,
                run_cycles: 10,
            },
            injections_per_cell: 8,
            ..CampaignConfig::default()
        };
        (flat, cells, flops, config)
    }

    #[test]
    fn tmr_differential_reduces_ser_with_exact_area_cost() {
        let (flat, cells, flops, config) = differential_fixture();
        let mission = MissionProfile::orbit_with_flare(25, 15).unwrap();
        let plans = vec![MitigationPlan {
            kind: MitigationKind::Tmr,
            targets: flops.clone(),
        }];
        let outcome = run_differential_campaign(
            &flat,
            &cells,
            &config,
            &mission,
            &plans,
            &Instrument::default(),
        )
        .unwrap();
        assert!(outcome.baseline.ser() > 0.0, "baseline must observe upsets");
        let tmr = &outcome.mitigations[0];
        // TMR masks every flop upset behind the voter; the combinational
        // SET population is identical, so the delta is strictly positive.
        assert!(tmr.ser_delta > 0.0);
        assert_eq!(tmr.masked_injections, 0);
        // Exact area cost: 2 replicas + 3 And2 + 1 Or3 per target.
        assert_eq!(tmr.report.added_cells, 6 * flops.len());
        assert_eq!(
            tmr.mission.campaign.records.len(),
            outcome.baseline.campaign.records.len()
        );
    }

    #[test]
    fn ff_hardening_masks_low_let_segments_without_simulation() {
        let (flat, cells, flops, config) = differential_fixture();
        // Proton (LET 1) and flare (LET 3) are both below the RadHardCell
        // Weibull threshold, so every flop injection is masked by physics.
        let mission = MissionProfile::orbit_with_flare(25, 15).unwrap();
        let plans = vec![MitigationPlan {
            kind: MitigationKind::FfHardening,
            targets: flops.clone(),
        }];
        let outcome = run_differential_campaign(
            &flat,
            &cells,
            &config,
            &mission,
            &plans,
            &Instrument::default(),
        )
        .unwrap();
        let ff = &outcome.mitigations[0];
        assert_eq!(
            ff.masked_injections,
            flops.len() * config.injections_per_cell
        );
        assert_eq!(ff.report.added_cells, 0);
        assert!(ff.report.transistors_after > ff.report.transistors_before);
        assert!(ff.ser_delta >= 0.0);
        // Masked records keep their schedule slot with soft_error = false.
        assert_eq!(
            ff.mission.campaign.records.len(),
            outcome.baseline.campaign.records.len()
        );
        for (base, mit) in outcome
            .baseline
            .campaign
            .records
            .iter()
            .zip(&ff.mission.campaign.records)
        {
            assert_eq!(base.cell, mit.cell);
            assert_eq!(base.fault, mit.fault);
        }
    }

    #[test]
    fn ff_hardening_still_simulates_above_threshold_strikes() {
        let (flat, cells, flops, config) = differential_fixture();
        // Heavy ions (LET 37) clear the RadHardCell threshold: nothing may
        // be masked and the hardened run must match the baseline exactly
        // (the hardened kinds are behavior-identical).
        let mission = MissionProfile::single(
            "beam",
            40,
            ssresf_radiation::ParticleEnvironment::heavy_ion(),
        )
        .unwrap();
        let plans = vec![MitigationPlan {
            kind: MitigationKind::FfHardening,
            targets: flops,
        }];
        let outcome = run_differential_campaign(
            &flat,
            &cells,
            &config,
            &mission,
            &plans,
            &Instrument::default(),
        )
        .unwrap();
        let ff = &outcome.mitigations[0];
        assert_eq!(ff.masked_injections, 0);
        assert_eq!(
            ff.mission.campaign.records,
            outcome.baseline.campaign.records
        );
        assert!(ff.ser_delta.abs() < 1e-15);
    }

    #[test]
    fn differential_json_is_deterministic() {
        let (flat, cells, flops, config) = differential_fixture();
        let mission = MissionProfile::orbit_with_flare(20, 12).unwrap();
        let plans = vec![
            MitigationPlan {
                kind: MitigationKind::Tmr,
                targets: flops.clone(),
            },
            MitigationPlan {
                kind: MitigationKind::FfHardening,
                targets: flops,
            },
        ];
        let run = || {
            run_differential_campaign(
                &flat,
                &cells,
                &config,
                &mission,
                &plans,
                &Instrument::default(),
            )
            .unwrap()
            .to_json()
            .to_string_pretty()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.contains("\"ser_delta\""));
        assert!(a.contains("\"tmr\""));
        assert!(a.contains("\"ff_hardening\""));
    }
}
